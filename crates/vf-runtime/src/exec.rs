//! Multi-backend execution of communication plans.
//!
//! PR 1 separated *planning* from *execution* (the PARTI
//! inspector/executor split, see [`crate::plan`]), but every executor was
//! still an ad-hoc serial copy loop on the calling thread, duplicated
//! across `redistribute`, `ghost`, `parti` and `assign`.  This module
//! extracts that loop behind the [`PlanExecutor`] trait and adds a second,
//! threaded backend:
//!
//! * [`SerialExecutor`] — the in-process baseline: one pass over the
//!   run-length-encoded transfers, one `copy_from_slice` per run, on the
//!   calling thread.
//! * [`ThreadedExecutor`] — partitions the transfer list *by destination
//!   processor* (each destination buffer is written by exactly one
//!   partition, so the partitions are embarrassingly parallel) and drives
//!   the copies from the [`vf_machine::spmd`] worker threads.
//! * [`ExecBackend`] — a runtime-selectable backend; [`ExecBackend::auto`]
//!   picks the threaded executor when the host has more than one core.
//!
//! Every backend charges the modelled communication with the *post/wait*
//! split of [`CommTracker::post_many`] / [`CommTracker::wait`]: the
//! messages are posted before the copies start and completed after they
//! finish, the way a real machine overlaps non-blocking sends with the
//! local packing work.  With zero overlap credit the charged totals are
//! bit-identical to the old single-shot [`CommPlan::charge`], which is what
//! keeps every backend's modelled accounting — and, since the copies are
//! data-independent per destination, the produced buffers — exactly equal
//! to the serial baseline (asserted by `tests/suite/parallel_exec.rs`).
//!
//! On top of the trait, [`FusedPlan`] merges the per-array redistribution
//! plans of a connect class (or any multi-array `DISTRIBUTE`) into one
//! schedule charged as a *single message per processor pair* for the whole
//! class — the per-array payloads between one (sender, receiver) pair
//! travel together instead of as one message per array.

use crate::plan::{CommPlan, PlanIndex, PlanKind, PlanRun, Transfer};
use crate::{DistArray, Element, RedistReport, Result, RuntimeError};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use vf_machine::{pool, spmd, trace, CommTracker, JobTicket, WorkerPool};

/// What executing a plan's communication charged to the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Messages charged.
    pub messages: usize,
    /// Bytes charged.
    pub bytes: usize,
}

/// A backend that can execute the copy phase of a [`CommPlan`].
///
/// The executor receives the transfer list, the per-processor source
/// buffers and the required destination-buffer sizes; it returns freshly
/// allocated destination buffers with every run copied in.  Implementations
/// must produce buffers bit-identical to [`SerialExecutor`] — backends only
/// differ in *how* the copies run, never in what they produce.
pub trait PlanExecutor {
    /// Human-readable backend name (used by benches and reports).
    fn name(&self) -> &'static str;

    /// Allocates one destination buffer per entry of `dst_sizes`
    /// (default-filled) and copies every run of every transfer from `src`
    /// into it.  `tracker` is the machine context threads are accounted
    /// against; the copies themselves charge nothing.
    fn run_copies<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_sizes: &[usize],
        tracker: &CommTracker,
    ) -> Vec<Vec<T>>;

    /// Applies owner-partitioned combine updates: `updates[p]` is the
    /// in-order list of `(local offset, value)` updates to apply to
    /// `locals[p]` with `combine(current, value)`.
    ///
    /// The combine function is order-sensitive *per owner* (updates to one
    /// element must apply in program order), but owners are independent —
    /// that is the partition [`crate::parti::execute_scatter_with`] feeds
    /// this hook, and the only parallelism a backend may exploit.  The
    /// default implementation applies owners serially in order; backends
    /// must produce bitwise-identical buffers.
    fn run_updates<T: Element>(
        &self,
        locals: &mut [Vec<T>],
        updates: &[Vec<(usize, T)>],
        combine: &(dyn Fn(T, T) -> T + Sync),
    ) {
        for (buf, ups) in locals.iter_mut().zip(updates) {
            for &(off, v) in ups {
                buf[off] = combine(buf[off], v);
            }
        }
    }

    /// Runs `num_items` independent indexed work items and returns the
    /// results in item order — the generic fan-out the wire-layout fused
    /// executors are built on (one item per destination processor).
    /// `copy_bytes` is the total copy volume of the job, letting a
    /// threaded backend apply its serial cutoff; the default
    /// implementation runs the items serially on the calling thread.
    /// Backends must produce identical results in identical order.
    fn run_indexed<R: Send>(
        &self,
        num_items: usize,
        copy_bytes: usize,
        tracker: &CommTracker,
        work: impl Fn(usize) -> R + Sync,
    ) -> Vec<R> {
        let _ = (copy_bytes, tracker);
        (0..num_items).map(work).collect()
    }

    /// Full execution of one plan: posts the plan's modelled messages,
    /// runs the copy phase, then completes the posted messages — the
    /// non-blocking post/wait pattern of a real message-passing machine.
    ///
    /// When the cost model prices local copies
    /// ([`vf_machine::CostModel::copy_per_byte`] non-zero), the copy phase
    /// is charged as per-destination compute time and credited as overlap
    /// at the wait: communication is hidden behind the packing work, as it
    /// is on a machine with non-blocking receives.  At the default zero
    /// rate the accounting is bit-identical to a plain post/wait.
    ///
    /// Returns the destination buffers and what was charged.
    fn execute<T: Element>(
        &self,
        plan: &CommPlan,
        src: &[Vec<T>],
        dst_sizes: &[usize],
        tracker: &CommTracker,
        aggregate: bool,
    ) -> (Vec<Vec<T>>, ExecReport) {
        // Directory page fetches of the inspection (indirect distributions
        // only, first execution only) complete before the data moves; they
        // are charged to the tracker but are not part of the data-plane
        // report.
        plan.charge_directory(tracker);
        let (batch, messages, bytes) = plan.message_batch(T::BYTES, aggregate);
        let post = trace::OpenSpan::begin_with(trace::Phase::Post, || format!("{messages} msgs"));
        let pending = tracker.post_many(batch);
        post.end();
        let copy = trace::OpenSpan::begin(trace::Phase::Unpack);
        let out = self.run_copies(plan.transfers(), src, dst_sizes, tracker);
        copy.end();
        let wait = trace::OpenSpan::begin(trace::Phase::Wait);
        finish_with_copy_credit(
            tracker,
            pending,
            &copy_seconds(plan.transfers(), T::BYTES, tracker),
        );
        wait.end();
        (out, ExecReport { messages, bytes })
    }
}

/// Per-destination-processor seconds spent in the copy phase of
/// `transfers` under the tracker's cost model (empty when the model prices
/// copies at zero — the default).  Each element lands in exactly one
/// destination buffer, so the unpacking work is attributed to the
/// destination.
pub(crate) fn copy_seconds(
    transfers: &[Transfer],
    elem_bytes: usize,
    tracker: &CommTracker,
) -> Vec<f64> {
    let rate = tracker.cost().copy_per_byte;
    if rate == 0.0 {
        return Vec::new();
    }
    let mut secs = vec![0.0f64; tracker.num_procs()];
    for t in transfers {
        if let Some(s) = secs.get_mut(t.dst.0) {
            *s += (t.elements * elem_bytes) as f64 * rate;
        }
    }
    secs
}

/// Completes `pending`, crediting `copy_secs` (per-processor copy-phase
/// seconds) as both local compute time and communication overlap.
pub(crate) fn finish_with_copy_credit(
    tracker: &CommTracker,
    pending: vf_machine::PendingSends,
    copy_secs: &[f64],
) {
    if copy_secs.is_empty() {
        tracker.wait(pending, 0.0);
        return;
    }
    for (p, &s) in copy_secs.iter().enumerate() {
        tracker.compute_seconds(p, s);
    }
    tracker.wait_overlapped(pending, copy_secs);
}

/// Copies every transfer run targeting destination processor `dst` from
/// `src` into `buf` — the per-destination unit of work both backends share.
/// Empty transfers and zero-length runs are skipped before any slice
/// arithmetic.
fn copy_runs_into<T: Element>(buf: &mut [T], dst: usize, transfers: &[Transfer], src: &[Vec<T>]) {
    for t in transfers
        .iter()
        .filter(|t| t.dst.0 == dst && t.elements > 0)
    {
        let src_local = &src[t.src.0];
        for run in &t.runs {
            if run.len == 0 {
                continue;
            }
            buf[run.dst_start..run.dst_start + run.len]
                .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
        }
    }
}

/// The in-process serial backend: the copy loop previously inlined in
/// `redistribute_impl`, `ghost`, `parti` and `assign`, extracted.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl PlanExecutor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run_copies<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_sizes: &[usize],
        _tracker: &CommTracker,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = dst_sizes
            .iter()
            .map(|&len| vec![T::default(); len])
            .collect();
        for t in transfers {
            if t.elements == 0 {
                continue;
            }
            let src_local = &src[t.src.0];
            let dst_local = &mut out[t.dst.0];
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                dst_local[run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
            }
        }
        out
    }
}

/// The threaded backend: the destination buffers are partitioned
/// round-robin over worker threads, each of which allocates and fills its
/// share (no two threads ever touch the same buffer, so no locking is
/// needed on the data path).
///
/// With a [`WorkerPool`] attached (the default for [`ThreadedExecutor::
/// auto`] and [`ExecBackend::auto`]) the partitions are submitted to the
/// pool's *parked* workers — a condvar wake instead of the full
/// [`vf_machine::spmd`] harness setup (fresh OS threads, channels,
/// barrier) per execute, which is 10–25× cheaper dispatch and the reason
/// the serial cutoff could drop from 512 KiB to 32 KiB.  Without a pool
/// the executor falls back to the fresh-spawn harness, the pre-pool
/// baseline the `e8_pool` bench measures against.
///
/// Threading only pays above a copy-volume cutoff — below it (or with a
/// single worker) the backend degrades to the serial loop while keeping the
/// post/wait charge order, so results and accounting are identical either
/// way.
#[derive(Debug, Clone)]
pub struct ThreadedExecutor {
    workers: usize,
    /// Explicit cutoff override; `None` picks the pool-dependent default.
    cutoff_override: Option<usize>,
    /// Persistent worker pool; `None` spawns fresh spmd workers per call.
    pool: Option<Arc<WorkerPool>>,
}

impl ThreadedExecutor {
    /// Default copy volume (in bytes) below which threading is not worth
    /// the **fresh-spawn** overhead and the copies run serially.  Only
    /// applies when no worker pool is attached.
    pub const DEFAULT_SERIAL_CUTOFF_BYTES: usize = 512 * 1024;

    /// Default copy volume (in bytes) below which even **pooled** dispatch
    /// is not worth waking the workers.  Pooled dispatch measures 10–25×
    /// cheaper than the fresh-spawn harness (see the `e8_pool` bench), so
    /// the crossover sits correspondingly lower: a pool wake costs a few
    /// microseconds, the memcpy equivalent of roughly this many bytes.
    pub const DEFAULT_POOLED_CUTOFF_BYTES: usize = 32 * 1024;

    /// A threaded executor with one worker per available hardware core,
    /// submitting to the process-wide persistent pool
    /// ([`vf_machine::pool::global`]).
    pub fn auto() -> Self {
        Self::with_pool(pool::global())
    }

    /// A threaded executor submitting to `pool` (one logical worker per
    /// pool worker).
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self {
            workers: pool.workers(),
            cutoff_override: None,
            pool: Some(pool),
        }
    }

    /// A threaded executor with exactly `workers` **fresh-spawn** worker
    /// threads (`workers` is clamped to at least 1) — the pre-pool
    /// baseline, kept for differential tests and the dispatch bench.
    /// Attach a pool with [`ThreadedExecutor::pooled`].
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            cutoff_override: None,
            pool: None,
        }
    }

    /// Attaches a persistent worker pool: partitions are submitted to the
    /// pool's parked workers instead of freshly spawned threads.  The
    /// pool's worker count takes over as the partition width.
    pub fn pooled(mut self, pool: Arc<WorkerPool>) -> Self {
        self.workers = pool.workers();
        self.pool = Some(pool);
        self
    }

    /// Overrides the serial/parallel cutoff (0 forces the threaded path
    /// for every plan — used by the equivalence property tests).
    pub fn serial_cutoff_bytes(self, bytes: usize) -> Self {
        self.with_serial_cutoff(bytes)
    }

    /// Overrides the serial/parallel cutoff in bytes: plans whose copy
    /// volume is below the cutoff run on the calling thread.  Without an
    /// override the default depends on the dispatch mechanism —
    /// [`ThreadedExecutor::DEFAULT_POOLED_CUTOFF_BYTES`] with a pool
    /// attached, [`ThreadedExecutor::DEFAULT_SERIAL_CUTOFF_BYTES`] for
    /// fresh spawns.  [`ExecBackend::auto`] additionally honours the
    /// `VF_EXEC_CUTOFF` environment variable (bytes) for benching.
    pub fn with_serial_cutoff(mut self, bytes: usize) -> Self {
        self.cutoff_override = Some(bytes);
        self
    }

    /// The cutoff currently in effect (override, or the dispatch-dependent
    /// default).
    pub fn effective_serial_cutoff(&self) -> usize {
        self.cutoff_override.unwrap_or(if self.pool.is_some() {
            Self::DEFAULT_POOLED_CUTOFF_BYTES
        } else {
            Self::DEFAULT_SERIAL_CUTOFF_BYTES
        })
    }

    /// The attached persistent worker pool, if any.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `num_items` independent work items — pool dispatch when a pool
    /// is attached, the fresh-spawn spmd harness otherwise.  Every
    /// threaded path funnels through here, so pooled and spawned execution
    /// can never drift in how items are partitioned (round-robin by item).
    ///
    /// Under fault injection the dispatch degrades rather than fails: a
    /// fired worker-death marks one worker dead in the tracker's injector,
    /// and as long as any workers are marked dead the pool is bypassed —
    /// fresh-spawn threads carry the job while more than one worker
    /// survives, a serial loop on the calling thread otherwise.  Both
    /// fallbacks return results in item order, so the produced buffers
    /// stay bitwise identical to the healthy path.
    fn dispatch<R, F>(&self, tracker: &CommTracker, num_items: usize, work: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if let Some(inj) = tracker.fault_injector() {
            if inj.worker_death() {
                inj.mark_worker_dead();
                tracker.record_fault();
                tracker.record_fallback();
            }
            let dead = inj.dead_workers();
            if dead > 0 {
                let healthy = self.workers.saturating_sub(dead);
                return if healthy > 1 {
                    spmd::run_partitioned(healthy, tracker, num_items, |_ctx, item| work(item))
                } else {
                    (0..num_items).map(work).collect()
                };
            }
        }
        match &self.pool {
            Some(pool) => pool.run_partitioned(tracker, num_items, |_ctx, item| work(item)),
            None => {
                spmd::run_partitioned(self.workers, tracker, num_items, |_ctx, item| work(item))
            }
        }
    }
}

impl PlanExecutor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run_copies<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_sizes: &[usize],
        tracker: &CommTracker,
    ) -> Vec<Vec<T>> {
        let elem = std::mem::size_of::<T>();
        let mut dest_bytes = vec![0usize; dst_sizes.len()];
        for t in transfers {
            if let Some(b) = dest_bytes.get_mut(t.dst.0) {
                *b += t.elements * elem;
            }
        }
        let copy_bytes: usize = dest_bytes.iter().sum();
        if self.workers <= 1 || copy_bytes < self.effective_serial_cutoff() {
            return SerialExecutor.run_copies(transfers, src, dst_sizes, tracker);
        }
        // Skew check: the per-destination partition serialises one worker
        // on the hottest receiver.  When that receiver carries more than
        // twice an even worker share, split *its* run list across the
        // workers instead (irregular plans — gather-like redistributions
        // into one owner — are exactly this case).
        let (hot, &hot_bytes) = dest_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, b)| *b)
            .expect("dst_sizes is non-empty for a plan above the cutoff");
        let skewed = hot_bytes * self.workers > 2 * copy_bytes.max(1);
        let mut out = self.dispatch(tracker, dst_sizes.len(), |dst| {
            if skewed && dst == hot {
                // Filled by the split phase below.
                return Vec::new();
            }
            let mut buf = vec![T::default(); dst_sizes[dst]];
            copy_runs_into(&mut buf, dst, transfers, src);
            buf
        });
        if skewed {
            out[hot] = self.copy_hot_destination_split(transfers, src, dst_sizes[hot], hot);
        }
        out
    }

    fn run_updates<T: Element>(
        &self,
        locals: &mut [Vec<T>],
        updates: &[Vec<(usize, T)>],
        combine: &(dyn Fn(T, T) -> T + Sync),
    ) {
        let total_bytes: usize = updates
            .iter()
            .map(|u| u.len() * std::mem::size_of::<T>())
            .sum();
        if self.workers <= 1 || total_bytes < self.effective_serial_cutoff() {
            SerialExecutor.run_updates(locals, updates, combine);
            return;
        }
        // Round-robin the owners over the workers: each owner's buffer is
        // touched by exactly one worker, and its updates apply in order,
        // so the combine semantics are exactly the serial ones.  Owners
        // with no updates are skipped outright.
        type OwnerWork<'a, T> = (&'a mut Vec<T>, &'a Vec<(usize, T)>);
        let mut bins: Vec<Vec<OwnerWork<'_, T>>> = (0..self.workers).map(|_| Vec::new()).collect();
        for (i, (buf, ups)) in locals.iter_mut().zip(updates).enumerate() {
            if ups.is_empty() {
                continue;
            }
            bins[i % self.workers].push((buf, ups));
        }
        let apply = |bin: &mut Vec<OwnerWork<'_, T>>| {
            for (buf, ups) in bin {
                for &(off, v) in *ups {
                    buf[off] = combine(buf[off], v);
                }
            }
        };
        let apply = &apply;
        match &self.pool {
            // Pooled: worker `rank` drains its own bin (one uncontended
            // lock each — the cells only exist to hand `&mut` bins through
            // the shared job closure).  Empty bins are dropped first so the
            // dispatch wakes only as many workers as there are bins with
            // work (right-sized wakes; owners are independent, so which
            // rank drains which bin does not matter).
            Some(pool) => {
                let cells: Vec<std::sync::Mutex<Vec<OwnerWork<'_, T>>>> = bins
                    .into_iter()
                    .filter(|bin| !bin.is_empty())
                    .map(std::sync::Mutex::new)
                    .collect();
                pool.run_limited(cells.len(), &|rank| {
                    if let Some(cell) = cells.get(rank) {
                        apply(&mut cell.lock().unwrap_or_else(|e| e.into_inner()));
                    }
                });
            }
            // Fresh-spawn baseline: one scoped thread per bin.
            None => std::thread::scope(|scope| {
                for mut bin in bins {
                    scope.spawn(move || apply(&mut bin));
                }
            }),
        }
    }

    fn run_indexed<R: Send>(
        &self,
        num_items: usize,
        copy_bytes: usize,
        tracker: &CommTracker,
        work: impl Fn(usize) -> R + Sync,
    ) -> Vec<R> {
        if self.workers <= 1 || copy_bytes < self.effective_serial_cutoff() {
            return (0..num_items).map(work).collect();
        }
        self.dispatch(tracker, num_items, work)
    }
}

impl ThreadedExecutor {
    /// Copies every run targeting the hot destination with the run list
    /// split across the workers.
    ///
    /// Each destination element is written by exactly one run, so the runs
    /// targeting one destination have pairwise-disjoint destination
    /// intervals; sorted by destination offset they tile the buffer in
    /// order, and cutting between runs yields independent contiguous
    /// regions that `split_at_mut` hands to the workers (the attached pool
    /// when there is one, scoped threads in fresh-spawn mode) — safe
    /// parallel writes into one buffer, no locking on the data path,
    /// bitwise-identical output.
    fn copy_hot_destination_split<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_size: usize,
        hot: usize,
    ) -> Vec<T> {
        let mut runs: Vec<(usize, PlanRun)> = transfers
            .iter()
            .filter(|t| t.dst.0 == hot && t.elements > 0)
            .flat_map(|t| t.runs.iter().map(move |r| (t.src.0, *r)))
            .filter(|(_, r)| r.len > 0)
            .collect();
        runs.sort_unstable_by_key(|(_, r)| r.dst_start);
        let total: usize = runs.iter().map(|(_, r)| r.len).sum();
        let mut buf = vec![T::default(); dst_size];
        if total == 0 {
            return buf;
        }
        // Chunk boundaries between runs, at roughly even element counts.
        let per_chunk = total.div_ceil(self.workers);
        let mut chunks: Vec<(usize, usize)> = Vec::with_capacity(self.workers); // run index ranges
        let mut start = 0usize;
        let mut acc = 0usize;
        for (i, (_, r)) in runs.iter().enumerate() {
            acc += r.len;
            if acc >= per_chunk && i + 1 < runs.len() {
                chunks.push((start, i + 1));
                start = i + 1;
                acc = 0;
            }
        }
        chunks.push((start, runs.len()));
        // Cut the buffer into the chunks' disjoint regions first, then
        // hand each (base offset, region, runs) work item to a worker.
        type HotChunk<'a, T> = (usize, &'a mut [T], &'a [(usize, PlanRun)]);
        let mut items: Vec<HotChunk<'_, T>> = Vec::with_capacity(chunks.len());
        {
            let mut remaining: &mut [T] = &mut buf;
            let mut offset = 0usize;
            for (k, &(lo, hi)) in chunks.iter().enumerate() {
                // The chunk's region ends where the next chunk's first run
                // starts (disjoint sorted runs: every run of this chunk
                // ends at or before that offset).
                let end = if k + 1 < chunks.len() {
                    runs[chunks[k + 1].0].1.dst_start
                } else {
                    dst_size
                };
                let (region, tail) = remaining.split_at_mut(end - offset);
                items.push((offset, region, &runs[lo..hi]));
                remaining = tail;
                offset = end;
            }
        }
        let copy_chunk = |(base, region, chunk_runs): &mut HotChunk<'_, T>| {
            for &(sp, r) in *chunk_runs {
                region[r.dst_start - *base..r.dst_start - *base + r.len]
                    .copy_from_slice(&src[sp][r.src_start..r.src_start + r.len]);
            }
        };
        match &self.pool {
            // Pooled: worker `rank` takes chunk `rank` (at most one chunk
            // per worker by construction); the cells only exist to hand
            // the `&mut` regions through the shared job closure.  The wake
            // is sized to the chunk count — fewer chunks than workers
            // never pays a full-pool wake.
            Some(pool) => {
                let cells: Vec<std::sync::Mutex<HotChunk<'_, T>>> =
                    items.into_iter().map(std::sync::Mutex::new).collect();
                pool.run_limited(cells.len(), &|rank| {
                    if let Some(cell) = cells.get(rank) {
                        copy_chunk(&mut cell.lock().unwrap_or_else(|e| e.into_inner()));
                    }
                });
            }
            // Fresh-spawn baseline: one scoped thread per chunk.
            None => std::thread::scope(|scope| {
                for mut item in items {
                    let copy_chunk = &copy_chunk;
                    scope.spawn(move || copy_chunk(&mut item));
                }
            }),
        }
        buf
    }
}

/// A runtime-selectable execution backend.
#[derive(Debug, Clone, Default)]
pub enum ExecBackend {
    /// In-process serial execution ([`SerialExecutor`]).
    #[default]
    Serial,
    /// Threaded per-destination execution ([`ThreadedExecutor`]).
    Threaded(ThreadedExecutor),
    /// Distributed-memory execution ([`crate::shard::ShardedExecutor`]):
    /// each rank holds only its local shard and fused wire buffers travel
    /// over real [`vf_machine::spmd`] channels.  Non-wire plan phases
    /// (scatter updates, plain per-part copies) fall back to the serial
    /// shared-memory oracle.
    Sharded(crate::shard::ShardedExecutor),
}

impl ExecBackend {
    /// The best backend for this host: threaded over the process-wide
    /// persistent worker pool when more than one hardware core is
    /// available, serial otherwise.
    ///
    /// The serial/parallel cutoff can be overridden for benching through
    /// the `VF_EXEC_CUTOFF` environment variable (bytes; must be positive
    /// — a zero value is rejected with a warning and the default cutoff is
    /// kept, since forcing the threaded path for every plan is what the
    /// [`ThreadedExecutor::serial_cutoff_bytes`] API is for).
    ///
    /// With `VF_EXEC_BACKEND=sharded`, the sharded receive bound can be
    /// tuned through `VF_SHARD_TIMEOUT` (milliseconds; positive).
    pub fn auto() -> Self {
        let mut threaded = ThreadedExecutor::auto();
        if let Ok(raw) = std::env::var("VF_EXEC_CUTOFF") {
            match raw.trim().parse::<usize>() {
                // A zero cutoff would thread every one-element plan — far
                // more likely a stray `VF_EXEC_CUTOFF=` / misunderstanding
                // than intent.  Warn and keep the default rather than
                // silently measuring a degenerate configuration.
                Ok(0) => eprintln!(
                    "warning: VF_EXEC_CUTOFF=0 is not honoured (it would force threaded \
                     dispatch for every plan); keeping the default cutoff — use \
                     ThreadedExecutor::serial_cutoff_bytes(0) to force threading in code"
                ),
                Ok(cutoff) => threaded = threaded.with_serial_cutoff(cutoff),
                // A set-but-unparseable override must not be measured
                // silently as the default: warn loudly and keep going.
                Err(_) => eprintln!(
                    "warning: ignoring unparseable VF_EXEC_CUTOFF={raw:?} (expected bytes, e.g. 32768)"
                ),
            }
        }
        if let Ok(raw) = std::env::var("VF_EXEC_BACKEND") {
            match raw.trim() {
                "sharded" => {
                    let mut exec = crate::shard::ShardedExecutor::new();
                    // The sharded receive bound is tunable per run: chaos
                    // suites shrink it so dead-peer detection is fast, and
                    // slow CI hosts can widen it.  Unparseable or zero
                    // values are rejected loudly, mirroring VF_EXEC_CUTOFF.
                    if let Ok(raw) = std::env::var("VF_SHARD_TIMEOUT") {
                        match raw.trim().parse::<u64>() {
                            Ok(ms) if ms > 0 => {
                                exec = exec.with_timeout(std::time::Duration::from_millis(ms));
                            }
                            _ => eprintln!(
                                "warning: ignoring unparseable VF_SHARD_TIMEOUT={raw:?} \
                                 (expected positive milliseconds, e.g. 30000)"
                            ),
                        }
                    }
                    return ExecBackend::Sharded(exec);
                }
                "serial" => return ExecBackend::Serial,
                "threaded" => {}
                other => eprintln!(
                    "warning: ignoring unknown VF_EXEC_BACKEND={other:?} (expected serial, threaded or sharded)"
                ),
            }
        }
        if threaded.workers() > 1 {
            ExecBackend::Threaded(threaded)
        } else {
            ExecBackend::Serial
        }
    }

    /// The persistent worker pool of the threaded backend, if any — the
    /// handle a `VfScope` keeps alive across statements.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        match self {
            ExecBackend::Serial => None,
            ExecBackend::Threaded(t) => t.pool(),
            ExecBackend::Sharded(s) => s.pool(),
        }
    }
}

impl PlanExecutor for ExecBackend {
    fn name(&self) -> &'static str {
        match self {
            ExecBackend::Serial => SerialExecutor.name(),
            ExecBackend::Threaded(t) => t.name(),
            ExecBackend::Sharded(s) => s.name(),
        }
    }

    fn run_copies<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_sizes: &[usize],
        tracker: &CommTracker,
    ) -> Vec<Vec<T>> {
        match self {
            ExecBackend::Serial => SerialExecutor.run_copies(transfers, src, dst_sizes, tracker),
            ExecBackend::Threaded(t) => t.run_copies(transfers, src, dst_sizes, tracker),
            ExecBackend::Sharded(s) => s.run_copies(transfers, src, dst_sizes, tracker),
        }
    }

    fn run_updates<T: Element>(
        &self,
        locals: &mut [Vec<T>],
        updates: &[Vec<(usize, T)>],
        combine: &(dyn Fn(T, T) -> T + Sync),
    ) {
        match self {
            ExecBackend::Serial => SerialExecutor.run_updates(locals, updates, combine),
            ExecBackend::Threaded(t) => t.run_updates(locals, updates, combine),
            ExecBackend::Sharded(s) => s.run_updates(locals, updates, combine),
        }
    }

    fn run_indexed<R: Send>(
        &self,
        num_items: usize,
        copy_bytes: usize,
        tracker: &CommTracker,
        work: impl Fn(usize) -> R + Sync,
    ) -> Vec<R> {
        match self {
            ExecBackend::Serial => SerialExecutor.run_indexed(num_items, copy_bytes, tracker, work),
            ExecBackend::Threaded(t) => t.run_indexed(num_items, copy_bytes, tracker, work),
            ExecBackend::Sharded(s) => s.run_indexed(num_items, copy_bytes, tracker, work),
        }
    }
}

/// One part's share of a fused wire message: `elements` elements of part
/// `part` packed at byte-order offset `wire_offset` (in elements) within
/// the pair's single fused message.
///
/// This is the *slot remapping* that lets each array's ghost-buffer (or
/// local-storage) offsets survive fusion: a receiver unpacks the slice at
/// `wire_offset .. wire_offset + elements` with part `part`'s own run
/// list, so the per-array destination offsets are untouched — only the
/// wire layout is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedSlice {
    /// Index of the part (array) within [`FusedPlan::parts`].
    pub part: usize,
    /// Elements the part contributes to this pair's message.
    pub elements: usize,
    /// Element offset of the part's payload within the fused message.
    pub wire_offset: usize,
}

/// A set of same-kind communication plans fused into one schedule.
///
/// `DISTRIBUTE` over a connect class (or a multi-array statement) plans
/// each array separately; unfused execution then charges one message per
/// *array* per processor pair.  The same holds for the overlap exchange of
/// a class of stencil arrays.  Fusing merges the per-array traffic so
/// every (sender, receiver) pair exchanges a **single message** carrying
/// the payloads of all arrays — the element and byte totals are exactly
/// the sum over the parts (asserted by `tests/suite/parallel_exec.rs` and
/// `tests/suite/ghost_fusion.rs`), only the message count drops.  The
/// per-pair wire layout ([`FusedPlan::wire_slices`]) records where each
/// part's payload sits inside the fused message, so every part's own
/// destination offsets (ghost slots, local offsets) remain valid.
#[derive(Debug, Clone)]
pub struct FusedPlan {
    kind: PlanKind,
    parts: Vec<Arc<CommPlan>>,
    moved_elements: usize,
    stayed_elements: usize,
    /// Crossing (src, dst) pairs with traffic in any part, with the summed
    /// element count — one fused message each.
    pub(crate) pair_elements: Vec<((usize, usize), usize)>,
    /// Per crossing pair (aligned with `pair_elements`): the wire layout of
    /// the fused message, parts in fusion order.
    pub(crate) pair_slices: Vec<Vec<FusedSlice>>,
    /// Per part: index of the part's transfer carrying a (src, dst) pair
    /// (at most one — plans aggregate per pair; local pairs included).
    /// Precomputed here so the wire executors pay no per-execute indexing.
    pub(crate) pair_transfer: Vec<HashMap<(usize, usize), usize>>,
    /// Per destination processor: indices into `pair_elements` of the
    /// pairs arriving there — the wire executors' per-destination work
    /// lists, precomputed for the same reason.
    pub(crate) pairs_by_dst: Vec<Vec<usize>>,
}

impl FusedPlan {
    /// Fuses a non-empty set of same-kind plans into one schedule.
    /// Redistribution and ghost plans fuse; gather/scatter schedules
    /// address access-pattern-specific buffers and do not.
    ///
    /// # Errors
    /// [`RuntimeError::FusionMismatch`] when `parts` is empty, mixes plan
    /// kinds, or contains a gather/scatter plan.
    pub fn fuse(parts: Vec<Arc<CommPlan>>) -> Result<Self> {
        let _span =
            trace::OpenSpan::begin_with(trace::Phase::Fuse, || format!("{} parts", parts.len()));
        let Some(first) = parts.first() else {
            return Err(RuntimeError::FusionMismatch {
                reason: "no plans to fuse".into(),
            });
        };
        let kind = first.kind();
        if !matches!(kind, PlanKind::Redistribute | PlanKind::Ghost) {
            return Err(RuntimeError::FusionMismatch {
                reason: format!("{kind:?} plans cannot be fused"),
            });
        }
        if let Some(odd) = parts.iter().find(|p| p.kind() != kind) {
            return Err(RuntimeError::FusionMismatch {
                reason: format!("cannot fuse a {:?} plan with {kind:?} plans", odd.kind()),
            });
        }
        Ok(Self::build(kind, parts))
    }

    /// Wraps one plan of *any* kind in the fused wire layout — the entry
    /// the channel-backed sharded gather uses.  Safe for every planner
    /// output because [`crate::plan::CommPlan`] carries at most one
    /// transfer per `(src, dst)` pair, which is the only structural
    /// assumption the pair index makes.  Not public: multi-plan fusion of
    /// gather/scatter schedules remains rejected by [`FusedPlan::fuse`].
    pub(crate) fn fuse_one(part: Arc<CommPlan>) -> Self {
        Self::build(part.kind(), vec![part])
    }

    fn build(kind: PlanKind, parts: Vec<Arc<CommPlan>>) -> Self {
        let mut pairs: BTreeMap<(usize, usize), Vec<FusedSlice>> = BTreeMap::new();
        let mut moved = 0usize;
        let mut stayed = 0usize;
        for (idx, part) in parts.iter().enumerate() {
            moved += part.moved_elements();
            stayed += part.stayed_elements();
            for t in part.transfers() {
                if t.src != t.dst && t.elements > 0 {
                    let slices = pairs.entry((t.src.0, t.dst.0)).or_default();
                    match slices.last_mut() {
                        Some(last) if last.part == idx => last.elements += t.elements,
                        _ => {
                            let wire_offset = slices
                                .last()
                                .map(|s| s.wire_offset + s.elements)
                                .unwrap_or(0);
                            slices.push(FusedSlice {
                                part: idx,
                                elements: t.elements,
                                wire_offset,
                            });
                        }
                    }
                }
            }
        }
        let mut pair_elements = Vec::with_capacity(pairs.len());
        let mut pair_slices = Vec::with_capacity(pairs.len());
        for (pair, slices) in pairs {
            pair_elements.push((pair, slices.iter().map(|s| s.elements).sum()));
            pair_slices.push(slices);
        }
        let pair_transfer = parts
            .iter()
            .map(|part| {
                part.transfers()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.elements > 0)
                    .map(|(i, t)| ((t.src.0, t.dst.0), i))
                    .collect()
            })
            .collect();
        let total_procs = parts.iter().map(|p| p.total_procs()).max().unwrap_or(0);
        let mut pairs_by_dst: Vec<Vec<usize>> = vec![Vec::new(); total_procs];
        for (i, &((_, dst), _)) in pair_elements.iter().enumerate() {
            if let Some(list) = pairs_by_dst.get_mut(dst) {
                list.push(i);
            }
        }
        Self {
            kind,
            parts,
            moved_elements: moved,
            stayed_elements: stayed,
            pair_elements,
            pair_slices,
            pair_transfer,
            pairs_by_dst,
        }
    }

    /// What kind of plans were fused (redistribution or ghost).
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// The fused per-array plans, in fusion order.
    pub fn parts(&self) -> &[Arc<CommPlan>] {
        &self.parts
    }

    /// The wire layout of the fused `(src, dst)` message: each part's
    /// payload slice, in fusion order, tiling `0..total_elements` of the
    /// pair.  Empty when the pair exchanges nothing.
    pub fn wire_slices(&self, src: usize, dst: usize) -> &[FusedSlice] {
        match self
            .pair_elements
            .binary_search_by_key(&(src, dst), |&(pair, _)| pair)
        {
            Ok(i) => &self.pair_slices[i],
            Err(_) => &[],
        }
    }

    /// Messages the fused schedule generates: one per crossing processor
    /// pair with traffic — at most `P·(P-1)`, independent of how many
    /// arrays were fused.
    pub fn num_messages(&self) -> usize {
        self.pair_elements.len()
    }

    /// Elements that cross processors, summed over the fused parts.
    pub fn moved_elements(&self) -> usize {
        self.moved_elements
    }

    /// Elements that stay on their processor, summed over the fused parts.
    pub fn stayed_elements(&self) -> usize {
        self.stayed_elements
    }

    /// Bytes that cross processors for `elem_bytes`-byte elements — equal
    /// to the sum of the parts' [`CommPlan::bytes_for`].
    pub fn bytes_for(&self, elem_bytes: usize) -> usize {
        self.moved_elements * elem_bytes
    }

    /// Validates that the fusion is of `expected` kind and covers exactly
    /// `arrays` arrays — the guard every fused executor runs first.
    pub(crate) fn check_parts(
        &self,
        expected: PlanKind,
        caller: &str,
        arrays: usize,
    ) -> Result<()> {
        if self.kind != expected {
            return Err(RuntimeError::FusionMismatch {
                reason: format!("{caller} needs {expected:?} parts, got {:?}", self.kind),
            });
        }
        if arrays != self.parts.len() {
            return Err(RuntimeError::FusionMismatch {
                reason: format!(
                    "fused plan has {} parts but {arrays} arrays were supplied",
                    self.parts.len()
                ),
            });
        }
        Ok(())
    }

    /// The fused message list: one `(src, dst, bytes)` entry per crossing
    /// processor pair, payloads of all parts summed.  Zero-byte entries are
    /// never emitted (a pair only appears with traffic, and elements are
    /// at least one byte wide).
    pub(crate) fn message_batch(&self, elem_bytes: usize) -> Vec<(usize, usize, usize)> {
        self.pair_elements
            .iter()
            .filter(|&&(_, elements)| elements * elem_bytes > 0)
            .map(|&((src, dst), elements)| (src, dst, elements * elem_bytes))
            .collect()
    }
}

/// Executes a fused `DISTRIBUTE`: every array is redistributed by its own
/// part plan (copies run through `executor`), while the modelled
/// communication is posted **once for the whole class** — a single message
/// per processor pair — before any copy starts and completed after the last
/// one finishes.
///
/// `arrays` must align with [`FusedPlan::parts`] (array `i` is moved by
/// part `i`).  Returns one [`RedistReport`] per array, whose
/// `messages`/`bytes` fields record what the array *would* have charged
/// unfused (the per-array diagnostic), plus the fused [`ExecReport`] of
/// what was actually charged to the tracker.
///
/// # Errors
/// [`RuntimeError::FusionMismatch`] if `arrays` and parts disagree in
/// length; [`RuntimeError::PlanMismatch`] / [`RuntimeError::TrackerMismatch`]
/// if any part does not apply to its array (validated for *all* arrays
/// before any data moves, so a failed fused execute changes nothing).
pub fn execute_redistribute_fused<T: Element, E: PlanExecutor>(
    arrays: &mut [&mut DistArray<T>],
    fused: &FusedPlan,
    tracker: &CommTracker,
    executor: &E,
) -> Result<(Vec<RedistReport>, ExecReport)> {
    fused.check_parts(
        PlanKind::Redistribute,
        "execute_redistribute_fused",
        arrays.len(),
    )?;
    // Validate every (array, part) pair before moving anything.
    for (array, part) in arrays.iter().zip(fused.parts()) {
        if !matches!(&part.index, PlanIndex::Redistribute { .. }) {
            return Err(RuntimeError::PlanMismatch {
                expected: part.src_fingerprint(),
                found: array.dist().fingerprint(),
            });
        }
        part.check_executable(array.dist(), tracker)?;
    }

    let mut reports = Vec::with_capacity(arrays.len());
    let exec = execute_fused_parts(fused, tracker, T::BYTES, |idx, part| {
        let array = &mut arrays[idx];
        let PlanIndex::Redistribute { new_dist } = &part.index else {
            unreachable!("validated above");
        };
        let mut dst_sizes = vec![0usize; part.total_procs()];
        for &q in new_dist.proc_ids() {
            dst_sizes[q.0] = new_dist.local_size(q);
        }
        let new_locals = executor.run_copies(part.transfers(), array.locals(), &dst_sizes, tracker);
        array.replace(new_dist.clone(), new_locals);
        array.broadcast_canonical();
        reports.push(RedistReport {
            moved_elements: part.moved_elements(),
            stayed_elements: part.stayed_elements(),
            messages: part.num_messages(),
            bytes: part.bytes_for(T::BYTES),
        });
    });
    Ok((reports, exec))
}

/// The shared charging skeleton of every fused execution: directory
/// fetches complete first, the **single message per crossing pair** batch
/// is posted, `copy_part(idx, part)` runs each part's copies (the whole
/// class's copy seconds accumulate per destination), and the batch
/// completes with the accumulated credit — so fused redistribution and
/// fused ghost exchange can never drift apart in how they charge.
pub(crate) fn execute_fused_parts(
    fused: &FusedPlan,
    tracker: &CommTracker,
    elem_bytes: usize,
    mut copy_part: impl FnMut(usize, &CommPlan),
) -> ExecReport {
    for part in fused.parts() {
        part.charge_directory(tracker);
    }
    let batch = fused.message_batch(elem_bytes);
    let messages = batch.len();
    let bytes: usize = batch.iter().map(|m| m.2).sum();
    let pending = tracker.post_many(batch);
    let mut fused_copy_secs: Vec<f64> = Vec::new();
    for (idx, part) in fused.parts().iter().enumerate() {
        copy_part(idx, part);
        let part_secs = copy_seconds(part.transfers(), elem_bytes, tracker);
        if fused_copy_secs.len() < part_secs.len() {
            fused_copy_secs.resize(part_secs.len(), 0.0);
        }
        for (acc, s) in fused_copy_secs.iter_mut().zip(part_secs) {
            *acc += s;
        }
    }
    finish_with_copy_credit(tracker, pending, &fused_copy_secs);
    ExecReport { messages, bytes }
}

// ---------------------------------------------------------------------------
// Wire framing: sequence + length + checksum per fused wire message
// ---------------------------------------------------------------------------

/// Whether fused wire buffers are framed (sequence number, element count,
/// checksum) and validated before unpack.  On by default; the only
/// legitimate reason to turn framing off is measuring its cost
/// (`benches/e10_faults.rs` guards it at ≤ 5% of the wire path).
static WIRE_FRAMING: AtomicBool = AtomicBool::new(true);

/// Monotonic sequence number stamped into each wire frame — lets a
/// [`RuntimeError::CorruptMessage`] name the exact message that failed.
static NEXT_WIRE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Enables or disables wire framing process-wide.
///
/// Bench-only: flipping this while exchanges are in flight is not
/// synchronised with them — a message framed before the flip is still
/// validated, one packed after it is not.
pub fn set_wire_framing(enabled: bool) {
    WIRE_FRAMING.store(enabled, Ordering::Relaxed);
}

/// Whether wire framing is currently enabled.
pub fn wire_framing_enabled() -> bool {
    WIRE_FRAMING.load(Ordering::Relaxed)
}

/// The header a real backend would prepend to each fused wire message:
/// enough to detect truncation (`elements`), corruption (`checksum`) and
/// to identify the message in an error report (`seq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireFrame {
    seq: u64,
    elements: usize,
    checksum: u64,
}

/// Per-exchange framing policy handed to the parallel copy jobs.
///
/// `seq_base` is a block of sequence numbers reserved with one
/// uncontended caller-side `fetch_add` (pair `pi` gets `seq_base + pi`),
/// so the destination jobs running on pool workers never bounce the
/// shared counter's cache line between cores.
///
/// `verify` controls the receive-side checksum scan.  The simulated
/// channel is process memory: a packed wire cannot change between frame
/// and unpack unless a fault injector deliberately flips it, so — like a
/// loopback interface marking packets `CHECKSUM_UNNECESSARY` — the scan
/// runs only when a [`vf_machine::FaultInjector`] is attached to the
/// tracker.  That keeps the fault-free framing cost to the sender-side
/// checksum (the e10 bench guards it at ≤ 5%) while injected corruption
/// is still *always* detected: an injector is the only way bits can flip
/// in transit, and its presence switches verification on.
#[derive(Debug, Clone, Copy)]
struct WireFraming {
    seq_base: u64,
    verify: bool,
}

/// Checksum of a packed wire buffer: the xor of every element's stored bit
/// pattern, with the length mixed in through an odd multiplier and one
/// bijective multiplicative finisher.  The accumulation is GF(2)-linear in
/// the payload bits — flipping any single bit flips exactly one bit of the
/// accumulator, so injected single-bit corruption can never pass
/// validation — and because the wire buffer is contiguous, the xor is one
/// sequential sweep at cache speed ([`xor_bits`]), which is what keeps
/// framing inside the e10 bench's 5% overhead guard.
pub(crate) fn wire_checksum<T: Element>(wire: &[T]) -> u64 {
    finish_checksum(xor_bits(wire), wire.len())
}

/// Reserves a block of `n` wire sequence numbers (one uncontended
/// `fetch_add`) and returns the first — the same reservation scheme the
/// in-process wire executors use, shared with the channel-backed sharded
/// exchange so sequence numbers stay globally unique across backends.
pub(crate) fn next_wire_seq_block(n: u64) -> u64 {
    NEXT_WIRE_SEQ.fetch_add(n, Ordering::Relaxed)
}

/// Xor of the stored bit patterns of `xs`, eight lanes wide so the loop
/// carries no serial dependency and vectorises.
#[inline]
fn xor_bits<T: Element>(xs: &[T]) -> u64 {
    let mut lanes = [0u64; 8];
    let mut chunks = xs.chunks_exact(8);
    for chunk in &mut chunks {
        for (lane, v) in lanes.iter_mut().zip(chunk) {
            *lane ^= v.to_bits64();
        }
    }
    let mut acc = lanes.into_iter().fold(0u64, |h, l| h ^ l);
    for v in chunks.remainder() {
        acc ^= v.to_bits64();
    }
    acc
}

/// Mixes the payload xor and the element count into the final checksum.
#[inline]
fn finish_checksum(acc: u64, len: usize) -> u64 {
    (acc ^ 0xcbf2_9ce4_8422_2325u64 ^ (len as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_mul(0x100_0000_01b3)
}

/// Validates an accumulated payload xor (and length) against a frame.
fn check_frame(acc: u64, len: usize, frame: &WireFrame, src: usize, dst: usize) -> Result<()> {
    if len != frame.elements || finish_checksum(acc, len) != frame.checksum {
        return Err(RuntimeError::CorruptMessage {
            src,
            dst,
            seq: frame.seq,
        });
    }
    Ok(())
}

/// Frames a freshly packed wire buffer.
fn frame_wire<T: Element>(wire: &[T]) -> WireFrame {
    WireFrame {
        seq: NEXT_WIRE_SEQ.fetch_add(1, Ordering::Relaxed),
        elements: wire.len(),
        checksum: wire_checksum(wire),
    }
}

/// Validates a wire buffer against its frame: one contiguous
/// [`xor_bits`] sweep checked by [`check_frame`].  Runs on the receive
/// side before any unpack copy, so a corrupt payload never reaches a
/// destination buffer.
fn verify_wire<T: Element>(wire: &[T], frame: &WireFrame, src: usize, dst: usize) -> Result<()> {
    check_frame(xor_bits(wire), wire.len(), frame, src, dst)
}

/// Draws one corruption decision from the tracker's fault injector and maps
/// it onto a crossing pair of `fused`: returns the pair index into
/// `fused.pair_elements`, plus the element seed and bit to flip.  Never
/// arms when framing is disabled (the flip would be silently unpacked) or
/// when the plan has no crossing traffic (nothing travels a wire).
fn arm_corruption(fused: &FusedPlan, tracker: &CommTracker) -> Option<(usize, u64, u32)> {
    if !wire_framing_enabled() {
        return None;
    }
    let inj = tracker.fault_injector()?;
    let crossing: Vec<usize> = fused
        .pair_elements
        .iter()
        .enumerate()
        .filter(|&(_, &((s, d), total))| s != d && total > 0)
        .map(|(i, _)| i)
        .collect();
    if crossing.is_empty() {
        return None;
    }
    let spec = inj.corrupt_wire()?;
    let pi = crossing[(spec.pair_seed as usize) % crossing.len()];
    Some((pi, spec.elem_seed, spec.bit))
}

/// The simulated per-part executors copy each part's runs straight from
/// source to destination storage; a real machine instead **packs** every
/// (sender → receiver) pair's payload into one contiguous wire buffer laid
/// out by [`FusedPlan::wire_slices`], ships it as a single message, and
/// **unpacks** it at the receiver by replaying each part's run list against
/// the slice at its wire offset.  This engine performs exactly those two
/// memcpy streams per pair (plus the direct copies of elements that stay
/// local), so the produced buffers are bitwise identical to the per-part
/// executors while the charged traffic is the same one-message-per-pair
/// batch — only the copy work is reorganised from per-part scattered runs
/// into per-pair contiguous streams.
/// Produces destination processor `d`'s buffers for every part of a fused
/// plan: direct copies for elements staying on `d`, then one pack →
/// unpack stream per sending processor, all driven by the indexes
/// [`FusedPlan::fuse`] precomputed (`pair_transfer`, `pairs_by_dst`) — no
/// per-execute indexing.  Each destination is written by exactly one
/// call, so calls for different destinations are embarrassingly parallel.
/// `framing` frames each packed wire and (with `verify` set, i.e. with a
/// fault injector attached) validates it before unpack; `sabotage` (from
/// [`arm_corruption`]) flips one bit of one pair's wire after framing —
/// the checksum failure is then repaired by restoring the pristine
/// element, modelling a detected corruption answered by a
/// retransmission.  An unrepairable mismatch aborts before any corrupt
/// element reaches a destination buffer.
fn wire_copy_for_dest<T: Element>(
    fused: &FusedPlan,
    srcs: &[&[Vec<T>]],
    dst_sizes: &[Vec<usize>],
    d: usize,
    framing: Option<WireFraming>,
    sabotage: Option<(usize, u64, u32)>,
) -> Result<Vec<Vec<T>>> {
    let parts = fused.parts();
    // One span covers this destination's whole copy stream (local copies,
    // pack, verify, unpack): per-destination is the granularity the pool
    // dispatches at, and coarse enough that tracing a dispatch-dominated
    // exchange stays within the e11 bench's enabled-overhead guard even on
    // a single-core host (the split streaming path keeps per-pair spans —
    // there the caller's overlapped compute absorbs the recording cost).
    let _span = trace::OpenSpan::begin_dest(trace::Phase::Unpack, d);
    let mut bufs: Vec<Vec<T>> = dst_sizes
        .iter()
        .map(|sizes| vec![T::default(); sizes.get(d).copied().unwrap_or(0)])
        .collect();
    // Elements that stay on `d` never touch a wire buffer.
    for (idx, part) in parts.iter().enumerate() {
        if let Some(&ti) = fused.pair_transfer[idx].get(&(d, d)) {
            let t = &part.transfers()[ti];
            let src_local = &srcs[idx][d];
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                bufs[idx][run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
            }
        }
    }
    // One wire message per sending processor with traffic to `d`, walked
    // through the precomputed per-destination pair lists.
    let arriving = fused.pairs_by_dst.get(d).map_or(&[][..], |v| v);
    for &pi in arriving {
        let ((s, _), total) = fused.pair_elements[pi];
        if s == d || total == 0 {
            continue;
        }
        let slices = &fused.pair_slices[pi][..];
        // Pack: every part's payload lands at its wire offset, runs in
        // plan order — one contiguous buffer per pair, exactly the
        // message a real backend would post.
        let mut wire: Vec<T> = vec![T::default(); total];
        for sl in slices {
            if sl.elements == 0 {
                continue;
            }
            let t = &parts[sl.part].transfers()[fused.pair_transfer[sl.part][&(s, d)]];
            let src_local = &srcs[sl.part][s];
            let mut off = sl.wire_offset;
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                wire[off..off + run.len]
                    .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
                off += run.len;
            }
            debug_assert_eq!(off, sl.wire_offset + sl.elements, "slice fills its window");
        }
        // The frame checksum is one contiguous whole-buffer pass — cheaper
        // than folding the xor into the scattered per-run copies, because
        // plain run copies stay `memcpy` and the sequential sweep
        // vectorises at cache speed (the e10 bench's 5% guard measures
        // exactly this trade).
        let frame = framing.map(|f| WireFrame {
            seq: f.seq_base + pi as u64,
            elements: total,
            checksum: wire_checksum(&wire),
        });
        // Armed corruption flips one element *after* framing — in transit.
        let mut sab_restore: Option<(usize, T)> = None;
        if let Some((spi, elem_seed, bit)) = sabotage {
            if spi == pi {
                let e = (elem_seed as usize) % wire.len();
                let orig = wire[e];
                wire[e] = orig.flip_bit(bit);
                sab_restore = Some((e, orig));
            }
        }
        // Validate before any element reaches a destination buffer (see
        // [`WireFraming::verify`] for when the scan runs).  A detected
        // mismatch restores the pristine element (the payload a modelled
        // retransmission carries) and revalidates; a failure that is not
        // the armed flip is unrepairable.
        if let (Some(frame), true) = (&frame, framing.is_some_and(|f| f.verify)) {
            if verify_wire(&wire, frame, s, d).is_err() {
                if let Some((e, orig)) = sab_restore {
                    wire[e] = orig;
                }
                verify_wire(&wire, frame, s, d)?;
                trace::instant(trace::Phase::CorruptionRepair);
            }
        }
        // Unpack: replay the same run lists against the receiver's
        // per-part buffers (ghost slots / new local offsets unchanged).
        for sl in slices {
            if sl.elements == 0 {
                continue;
            }
            let t = &parts[sl.part].transfers()[fused.pair_transfer[sl.part][&(s, d)]];
            let mut off = sl.wire_offset;
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                bufs[sl.part][run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&wire[off..off + run.len]);
                off += run.len;
            }
        }
    }
    Ok(bufs)
}

/// Per-processor seconds of the wire copy phase under the tracker's cost
/// model (empty at the default zero rate): packing is charged to the
/// *sender*, unpacking (and direct local copies) to the *receiver* — the
/// two memcpy streams a real message-passing backend performs on each side
/// of the wire.
pub(crate) fn wire_copy_seconds(
    fused: &FusedPlan,
    elem_bytes: usize,
    tracker: &CommTracker,
) -> Vec<f64> {
    let rate = tracker.cost().copy_per_byte;
    if rate == 0.0 {
        return Vec::new();
    }
    let mut secs = vec![0.0f64; tracker.num_procs()];
    for part in fused.parts() {
        for t in part.transfers() {
            if t.elements == 0 {
                continue;
            }
            let s = (t.elements * elem_bytes) as f64 * rate;
            if t.src != t.dst {
                if let Some(x) = secs.get_mut(t.src.0) {
                    *x += s;
                }
            }
            if let Some(x) = secs.get_mut(t.dst.0) {
                *x += s;
            }
        }
    }
    secs
}

/// The charging + copy skeleton of the wire-packed fused executors: the
/// single-message-per-pair batch is posted, every destination's pack →
/// unpack streams run through `executor` (one work item per destination,
/// parallelised by the pooled backend above its cutoff), and the batch
/// completes with the pack/unpack seconds credited as copy-overlap
/// compute.  Returns per-part, per-processor destination buffers.
///
/// # Errors
/// [`RuntimeError::CorruptMessage`] if a framed wire buffer fails
/// validation and cannot be repaired — the posted charges are settled
/// before the error propagates, so the tracker never carries a leaked
/// pending batch.
pub(crate) fn execute_fused_wire<T: Element, E: PlanExecutor>(
    fused: &FusedPlan,
    tracker: &CommTracker,
    executor: &E,
    srcs: &[&[Vec<T>]],
    dst_sizes: &[Vec<usize>],
) -> Result<(Vec<Vec<Vec<T>>>, ExecReport)> {
    for part in fused.parts() {
        part.charge_directory(tracker);
    }
    let batch = fused.message_batch(T::BYTES);
    let messages = batch.len();
    let bytes: usize = batch.iter().map(|m| m.2).sum();
    let post = trace::OpenSpan::begin_with(trace::Phase::Post, || format!("{messages} msgs"));
    let pending = tracker.post_many(batch);
    post.end();
    let framing = wire_framing_enabled().then(|| WireFraming {
        seq_base: NEXT_WIRE_SEQ.fetch_add(fused.pair_elements.len() as u64, Ordering::Relaxed),
        verify: tracker.fault_injector().is_some(),
    });
    let sabotage = arm_corruption(fused, tracker);
    if let Some((pi, _, _)) = sabotage {
        // The flip below is detected and repaired at unpack; charge the
        // modelled retransmission of that pair's payload now, caller-side,
        // so the accounting is deterministic regardless of which thread
        // performs the repair.
        let ((s, d), total) = fused.pair_elements[pi];
        tracker.record_fault();
        tracker.charge_retransmissions(s, d, total * T::BYTES, 1);
    }
    // Pack + unpack touch every crossing element twice; stayed elements
    // copy once.  This volume drives the threaded backend's cutoff.
    let copy_bytes = (2 * fused.moved_elements() + fused.stayed_elements()) * T::BYTES;
    let per_dest = executor.run_indexed(fused.pairs_by_dst.len(), copy_bytes, tracker, |d| {
        wire_copy_for_dest(fused, srcs, dst_sizes, d, framing, sabotage)
    });
    // Settle the posted batch before any `?` — charges must never leak on
    // the corrupt-message path.
    let wait = trace::OpenSpan::begin(trace::Phase::Wait);
    finish_with_copy_credit(
        tracker,
        pending,
        &wire_copy_seconds(fused, T::BYTES, tracker),
    );
    wait.end();
    // Transpose the destination-major results into per-part buffers.
    let mut out: Vec<Vec<Vec<T>>> = dst_sizes
        .iter()
        .map(|sizes| vec![Vec::new(); sizes.len()])
        .collect();
    for (d, bufs) in per_dest.into_iter().enumerate() {
        for (idx, buf) in bufs?.into_iter().enumerate() {
            if d < out[idx].len() {
                out[idx][d] = buf;
            }
        }
    }
    Ok((out, ExecReport { messages, bytes }))
}

/// [`execute_redistribute_fused`] through the **wire-layout** path: every
/// crossing processor pair's payload is packed into one contiguous wire
/// buffer (laid out by [`FusedPlan::wire_slices`]), charged as exactly one
/// message, and unpacked at the destination — per-pair memcpy streams
/// instead of per-part scattered copies, with the pack/unpack phases run
/// through `executor` and credited as copy-overlap compute.  Buffers,
/// reports and charged traffic are bitwise identical to
/// [`execute_redistribute_fused`]; only the copy organisation differs.
///
/// # Errors
/// Exactly as [`execute_redistribute_fused`]: everything is validated
/// before any data moves.
pub fn execute_redistribute_fused_wire<T: Element, E: PlanExecutor>(
    arrays: &mut [&mut DistArray<T>],
    fused: &FusedPlan,
    tracker: &CommTracker,
    executor: &E,
) -> Result<(Vec<RedistReport>, ExecReport)> {
    fused.check_parts(
        PlanKind::Redistribute,
        "execute_redistribute_fused_wire",
        arrays.len(),
    )?;
    // Validate every (array, part) pair before moving anything.
    let mut new_dists = Vec::with_capacity(arrays.len());
    for (array, part) in arrays.iter().zip(fused.parts()) {
        let PlanIndex::Redistribute { new_dist } = &part.index else {
            return Err(RuntimeError::PlanMismatch {
                expected: part.src_fingerprint(),
                found: array.dist().fingerprint(),
            });
        };
        part.check_executable(array.dist(), tracker)?;
        new_dists.push(new_dist.clone());
    }
    let dst_sizes: Vec<Vec<usize>> = fused
        .parts()
        .iter()
        .zip(&new_dists)
        .map(|(part, new_dist)| {
            let mut sizes = vec![0usize; part.total_procs()];
            for &q in new_dist.proc_ids() {
                sizes[q.0] = new_dist.local_size(q);
            }
            sizes
        })
        .collect();
    let (bufs, exec) = {
        let srcs: Vec<&[Vec<T>]> = arrays.iter().map(|a| a.locals()).collect();
        execute_fused_wire(fused, tracker, executor, &srcs, &dst_sizes)?
    };
    let mut reports = Vec::with_capacity(arrays.len());
    for (((array, part), new_dist), locals) in arrays
        .iter_mut()
        .zip(fused.parts())
        .zip(new_dists)
        .zip(bufs)
    {
        array.replace(new_dist, locals);
        array.broadcast_canonical();
        reports.push(RedistReport {
            moved_elements: part.moved_elements(),
            stayed_elements: part.stayed_elements(),
            messages: part.num_messages(),
            bytes: part.bytes_for(T::BYTES),
        });
    }
    Ok((reports, exec))
}

// ---------------------------------------------------------------------------
// Split-phase wire execution: pack → post → interior compute → unpack/wait
// ---------------------------------------------------------------------------

/// What a split-phase wire execution charged and measured.
///
/// `messages`/`bytes` are exactly what the blocking wire path charges for
/// the same fused plan; the two measured fields are the wall-clock
/// instrumentation that makes the cost model's overlap credit falsifiable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SplitExecReport {
    /// Messages charged (one per crossing processor pair).
    pub messages: usize,
    /// Bytes charged.
    pub bytes: usize,
    /// Wall-clock seconds the *background* unpack workers were busy
    /// between the post and the wait, clamped to the post→wait interval —
    /// real compute/communication overlap.  Zero when the exchange ran
    /// inline (serial backend, below-cutoff volume, or a 1-wide pool).
    pub measured_overlap_seconds: f64,
    /// Total wall-clock seconds spent unpacking wire buffers (background
    /// workers plus caller help at the wait).
    pub measured_unpack_seconds: f64,
}

/// The owned state a split-phase unpack job streams through: packed wire
/// buffers in, per-(part, destination) buffers out.  Fully `'static` —
/// packing and the stay-local copies read the *borrowed* sources at post
/// time on the caller thread, so nothing in here borrows the arrays.
struct SplitShared<T> {
    fused: FusedPlan,
    /// Indices into `fused.pair_elements` of the crossing pairs with
    /// traffic — the independent unpack work items.
    crossing: Vec<usize>,
    /// Packed wire buffer per crossing pair (aligned with `crossing`).
    /// Behind a mutex so the unpacking rank can repair an injected
    /// corruption in place (one uncontended lock per item — each item is
    /// claimed by exactly one rank at a time).
    wires: Vec<Mutex<Vec<T>>>,
    /// Wire frame per crossing pair (`None` with framing disabled),
    /// validated by the claiming rank before the pair is unpacked.
    frames: Vec<Option<WireFrame>>,
    /// Whether claiming ranks run the receive-side checksum scan — set
    /// iff a fault injector is attached (see [`WireFraming::verify`]).
    verify: bool,
    /// The armed corruption, if any: which item was flipped and the
    /// pristine element a modelled retransmission restores.
    sabotage: Option<SplitSabotage<T>>,
    /// Background rank armed to die (panic) before its first unpack —
    /// never rank 0, which is the caller.
    die_rank: Option<usize>,
    /// Destination buffers, `bufs[part][proc]` — mutexes only hand `&mut`
    /// access through the shared job; pairs into one destination write
    /// pairwise-disjoint runs, so there is no contention on the data.
    bufs: Vec<Vec<Mutex<Vec<T>>>>,
    /// Next unclaimed index into `crossing` (work stealing).
    claim: AtomicUsize,
    /// Crossing pairs not yet unpacked, per destination processor —
    /// per-pair completion, so a consumer can wait for one destination
    /// without a global barrier.
    remaining_by_dst: Vec<AtomicUsize>,
    /// Items a dying rank had claimed but not unpacked — adopted by the
    /// caller thread ([`SplitShared::recover_abandoned`]) so no
    /// destination is ever left partially assembled.
    abandoned: Mutex<Vec<usize>>,
    /// Set when any background rank died mid-stream (simulated or a real
    /// panic) — gates the recovery scan on waiting paths.
    died: AtomicBool,
    /// First unrepairable validation failure, reported from
    /// [`SplitPhaseExchange::wait`]; the corrupt payload never reaches a
    /// caller (the wait returns the error instead of the buffers).
    fatal: Mutex<Option<RuntimeError>>,
    /// Nanoseconds background ranks spent unpacking (the overlap
    /// measurement) and nanoseconds the caller spent helping (kept apart
    /// so help at the wait is never misreported as overlap).
    background_nanos: AtomicU64,
    help_nanos: AtomicU64,
}

/// The armed wire corruption of a split exchange: item `item` of the
/// crossing list had element `elem` bit-flipped after framing; `orig` is
/// the pristine value the repair (modelled retransmission) restores.
struct SplitSabotage<T> {
    item: usize,
    elem: usize,
    orig: T,
}

/// Panic payload of a simulated worker death — distinguishes injected
/// deaths from real unpack bugs only in intent: both are contained the
/// same way (the rank stops claiming, its item is handed to the caller).
struct SimulatedWorkerDeath;

impl<T: Element> SplitShared<T> {
    /// Unpacks crossing pair `crossing[k]` into its destination's per-part
    /// buffers — the unpack half of [`wire_copy_for_dest`], run by
    /// whichever rank claimed the item.  A framed wire is validated
    /// ([`verify_wire`]) before any unpack copy; a checksum failure
    /// matching the armed sabotage is repaired by restoring the pristine
    /// element (modelled retransmission) and revalidating, anything still
    /// failing is recorded as fatal and the pair is never unpacked — the
    /// wait reports the error and no corrupt element reaches a caller.
    fn unpack_claimed(&self, k: usize, pi: usize) {
        let ((s, d), _) = self.fused.pair_elements[pi];
        let _span = trace::OpenSpan::begin_pair(trace::Phase::Unpack, s, d);
        {
            let mut wire = self.wires[k].lock().unwrap_or_else(PoisonError::into_inner);
            let valid = match &self.frames[k] {
                Some(frame) if self.verify => verify_wire(&wire, frame, s, d).or_else(|_| {
                    if let Some(sab) = &self.sabotage {
                        if sab.item == k {
                            wire[sab.elem] = sab.orig;
                        }
                    }
                    verify_wire(&wire, frame, s, d)
                        .map(|()| trace::instant(trace::Phase::CorruptionRepair))
                }),
                _ => Ok(()),
            };
            match valid {
                Ok(()) => self.unpack_pair(pi, s, d, &wire),
                Err(e) => {
                    *self.fatal.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                }
            }
        }
        // `Release` pairs with the `Acquire` load in `help_until_dest`:
        // whoever observes zero also observes every buffer write above.
        // A fatal frame failure still counts as delivered so waiters never
        // spin on a destination that can no longer complete.
        self.remaining_by_dst[d].fetch_sub(1, Ordering::Release);
    }

    /// One replay of pair `pi`'s run lists from its (already validated)
    /// wire into the destination buffers.
    fn unpack_pair(&self, pi: usize, s: usize, d: usize, wire: &[T]) {
        for sl in &self.fused.pair_slices[pi] {
            if sl.elements == 0 {
                continue;
            }
            let t = &self.fused.parts()[sl.part].transfers()
                [self.fused.pair_transfer[sl.part][&(s, d)]];
            let Some(cell) = self.bufs[sl.part].get(d) else {
                continue;
            };
            let mut buf = cell.lock().unwrap_or_else(PoisonError::into_inner);
            let mut off = sl.wire_offset;
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                buf[run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&wire[off..off + run.len]);
                off += run.len;
            }
        }
    }

    /// Claims and unpacks items until none are left — the pool job body
    /// (background ranks) and the caller's help at the wait (rank 0).
    ///
    /// Each item is unpacked under `catch_unwind`: a rank that panics —
    /// the armed simulated death, or a real unpack bug — hands its claimed
    /// item to [`SplitShared::recover_abandoned`] and stops claiming, so
    /// the pool's other workers (and the pool itself) stay usable and no
    /// destination is left short an item.  A real panic reproduces on the
    /// caller thread when recovery re-runs the item.
    fn drain(&self, rank: usize) {
        let timer = if rank == 0 {
            &self.help_nanos
        } else {
            &self.background_nanos
        };
        loop {
            let k = self.claim.fetch_add(1, Ordering::Relaxed);
            let Some(&pi) = self.crossing.get(k) else {
                break;
            };
            let t0 = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.die_rank == Some(rank) {
                    std::panic::panic_any(SimulatedWorkerDeath);
                }
                self.unpack_claimed(k, pi);
            }));
            if outcome.is_err() {
                self.abandoned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(k);
                self.died.store(true, Ordering::Release);
                break;
            }
            timer.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Adopts and unpacks every item a dead rank abandoned — called from
    /// the caller thread on all waiting paths, so the drain always
    /// completes even after a mid-stream worker death.  Idempotent: the
    /// abandoned list pops each item exactly once.
    fn recover_abandoned(&self) {
        loop {
            let next = self
                .abandoned
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            let Some(k) = next else {
                break;
            };
            let pi = self.crossing[k];
            let t0 = Instant::now();
            self.unpack_claimed(k, pi);
            self.help_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Blocks until every pair arriving at destination `d` has been
    /// unpacked, helping with unclaimed items (any destination) while
    /// waiting.
    fn help_until_dest(&self, d: usize) {
        let Some(remaining) = self.remaining_by_dst.get(d) else {
            return;
        };
        while remaining.load(Ordering::Acquire) > 0 {
            if self.claim.load(Ordering::Relaxed) <= self.crossing.len() {
                let k = self.claim.fetch_add(1, Ordering::Relaxed);
                if let Some(&pi) = self.crossing.get(k) {
                    let t0 = Instant::now();
                    self.unpack_claimed(k, pi);
                    self.help_nanos
                        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    continue;
                }
            }
            // All items claimed; the stragglers are in flight elsewhere —
            // unless a rank died with its item claimed, in which case the
            // waiter adopts it instead of spinning forever.
            if self.died.load(Ordering::Acquire) {
                self.recover_abandoned();
            }
            std::thread::yield_now();
        }
    }
}

/// A fused wire exchange caught between its post and its wait — the
/// [`SplitPhaseExchange`] engine.
///
/// Created by [`split_execute_fused_wire`] after the pack + post phases
/// have completed on the caller thread: the modelled messages are posted,
/// every crossing pair's payload sits packed in an owned wire buffer, and
/// the stay-local runs are already copied.  With a multi-worker pool
/// attached (and the volume above the backend cutoff) the pool's workers
/// stream through the per-pair unpacks *concurrently with whatever the
/// caller does next*; [`SplitPhaseExchange::wait`] helps drain the
/// remaining pairs, completes the posted messages with exactly the
/// blocking path's overlap credit, and returns buffers bitwise identical
/// to [`execute_fused_wire`].
///
/// Per-pair completion is exposed through
/// [`SplitPhaseExchange::wait_dest`]: a consumer that only needs one
/// destination's data (pipelined sweeps) can proceed as soon as that
/// destination's pairs have landed, while the rest are still in flight.
///
/// While the handle is live the submitting thread must not run other jobs
/// on the same pool (the pool's submission turn is held — see
/// [`WorkerPool::submit`]), and the source arrays must not be mutated
/// (their relevant values are already packed; mutations would be silently
/// ignored).
///
/// The handle is **cancel-safe**: dropping it without calling
/// [`SplitPhaseExchange::wait`] (or calling
/// [`SplitPhaseExchange::cancel`], which is the same thing spelled out)
/// drains the in-flight background unpack and settles the posted tracker
/// charges — the messages were already sent at the post, so cancellation
/// completes them rather than pretending they never happened.  No charge
/// is ever leaked and the pool's submission turn is always released.
pub struct SplitPhaseExchange<'e, T: Element> {
    shared: Arc<SplitShared<T>>,
    ticket: Option<JobTicket<'e>>,
    pending: Option<vf_machine::PendingSends>,
    copy_secs: Vec<f64>,
    messages: usize,
    bytes: usize,
    /// Clone of the tracker the exchange was posted against — lets `Drop`
    /// settle the pending charges without the caller re-supplying it.
    tracker: CommTracker,
    posted_at: Instant,
    /// The explicitly begun/ended [`trace::Phase::SplitPending`] span
    /// covering the post→settle in-flight window.  Ended in
    /// [`SplitPhaseExchange::settle_unpack`] so `wait`, `cancel` and a
    /// bare drop all balance it; the `OpenSpan` drop guard backstops any
    /// path that skips the settle.
    span: Option<trace::OpenSpan>,
}

impl<T: Element> SplitPhaseExchange<'_, T> {
    /// Messages posted (one per crossing processor pair).
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// Bytes posted.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the unpack is streaming on background workers (`false`:
    /// everything already ran inline at the post — serial backend, 1-wide
    /// pool, or below-cutoff volume).
    pub fn is_streaming(&self) -> bool {
        self.ticket.is_some()
    }

    /// Blocks until every pair arriving at destination processor `d` has
    /// been unpacked (helping with unclaimed pairs while waiting) — the
    /// per-pair completion that lets a pipelined consumer start on `d`'s
    /// data while other destinations are still in flight.  The full
    /// [`SplitPhaseExchange::wait`] is still required afterwards.
    pub fn wait_dest(&self, d: usize) {
        let _span = trace::OpenSpan::begin_dest(trace::Phase::Wait, d);
        self.shared.help_until_dest(d);
    }

    /// Runs `f` on destination processor `d`'s buffer for part `part`.
    /// Call [`SplitPhaseExchange::wait_dest`]`(d)` first — the lock hands
    /// out the buffer whether or not its pairs have all landed.
    pub fn with_dest_mut<R>(&self, part: usize, d: usize, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        let mut buf = self.shared.bufs[part][d]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        f(&mut buf)
    }

    /// Drains the streaming job to completion: measures the overlap,
    /// waits out the ticket, and adopts any items a dead rank abandoned.
    /// Shared by [`SplitPhaseExchange::wait`] and the `Drop` impl; no-op
    /// (returning zero overlap) once the ticket has been taken.
    fn settle_unpack(&mut self) -> f64 {
        let measured_overlap = if self.ticket.is_some() {
            let elapsed = self.posted_at.elapsed().as_secs_f64();
            let busy = self.shared.background_nanos.load(Ordering::Relaxed) as f64 * 1e-9;
            busy.min(elapsed)
        } else {
            0.0
        };
        if let Some(ticket) = self.ticket.take() {
            // Runs rank 0's share of the drain (work-steal help), then
            // blocks until the background ranks have finished.
            ticket.wait();
        }
        self.shared.recover_abandoned();
        if let Some(span) = self.span.take() {
            span.end();
        }
        measured_overlap
    }

    /// Cancels the exchange without taking its results: drains the
    /// in-flight background unpack and settles the posted tracker charges
    /// (the messages were already sent — cancellation completes them).
    /// Exactly equivalent to dropping the handle; provided so call sites
    /// can make the intent explicit.
    pub fn cancel(self) {
        drop(self);
    }

    /// Completes the exchange: helps unpack the remaining pairs, blocks
    /// until the background workers are done, charges the posted messages
    /// with the same copy-overlap credit as the blocking wire path, and
    /// records the *measured* overlap (background unpack seconds clamped
    /// to the post→wait interval) with the tracker.  Returns the per-part,
    /// per-processor destination buffers — bitwise identical to
    /// [`execute_fused_wire`] — and the report.
    ///
    /// # Errors
    /// [`RuntimeError::CorruptMessage`] if a framed wire buffer failed
    /// validation and could not be repaired (the charges are settled, the
    /// corrupt payload was never unpacked);
    /// [`RuntimeError::HandleConsumed`] if the handle's pending charges
    /// were already settled — a state safe Rust cannot reach through this
    /// API (wait consumes the handle), kept as a structured error rather
    /// than a panic so wrapper types never have a reachable `expect` in
    /// their wait path.
    pub fn wait(mut self, tracker: &CommTracker) -> Result<(Vec<Vec<Vec<T>>>, SplitExecReport)> {
        let messages = self.messages;
        let _wait_span =
            trace::OpenSpan::begin_with(trace::Phase::Wait, || format!("{messages} msgs"));
        let measured_overlap = self.settle_unpack();
        let Some(pending) = self.pending.take() else {
            return Err(RuntimeError::HandleConsumed {
                handle: "SplitPhaseExchange",
            });
        };
        finish_with_copy_credit(tracker, pending, &self.copy_secs);
        tracker.record_measured_overlap(measured_overlap);
        if let Some(e) = self
            .shared
            .fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(e);
        }
        let measured_unpack = (self.shared.background_nanos.load(Ordering::Relaxed)
            + self.shared.help_nanos.load(Ordering::Relaxed)) as f64
            * 1e-9;
        let (messages, bytes) = (self.messages, self.bytes);
        // `Drop` prevents moving fields out of `self`; clone the Arc and
        // let the (now no-op — ticket and pending are taken) drop run.
        let shared = Arc::clone(&self.shared);
        drop(self);
        // True invariant, not a reachable failure: the ticket completed
        // above and the handle was just dropped, so this Arc is the only
        // reference left.
        let shared = Arc::try_unwrap(shared)
            .ok()
            .expect("job complete: the ticket held the only other reference");
        let bufs = shared
            .bufs
            .into_iter()
            .map(|per_proc| {
                per_proc
                    .into_iter()
                    .map(|cell| cell.into_inner().unwrap_or_else(PoisonError::into_inner))
                    .collect()
            })
            .collect();
        Ok((
            bufs,
            SplitExecReport {
                messages,
                bytes,
                measured_overlap_seconds: measured_overlap,
                measured_unpack_seconds: measured_unpack,
            },
        ))
    }
}

/// Drop-without-wait: a posted handle that goes out of scope drains its
/// background workers and settles the pending tracker charges against the
/// tracker it was posted on.  The messages were sent at the post, so the
/// settled totals equal a normal wait's — cancellation never voids traffic
/// that already happened, and never leaks a pending batch or the pool's
/// submission turn.  No-op after `wait` (which takes ticket and pending).
impl<T: Element> Drop for SplitPhaseExchange<'_, T> {
    fn drop(&mut self) {
        if self.ticket.is_none() && self.pending.is_none() {
            return;
        }
        let _span = trace::OpenSpan::begin_static(trace::Phase::Wait, "cancel");
        let measured_overlap = self.settle_unpack();
        if let Some(pending) = self.pending.take() {
            finish_with_copy_credit(&self.tracker, pending, &self.copy_secs);
            self.tracker.record_measured_overlap(measured_overlap);
        }
    }
}

/// The split-phase counterpart of [`execute_fused_wire`]: charges the
/// directory fetches, posts the single-message-per-pair batch, packs every
/// crossing pair's wire buffer and copies the stay-local runs (all on the
/// caller thread — these phases read the borrowed sources), then hands the
/// owned per-pair unpacks to the backend's worker pool and **returns**.
/// The caller runs its interior compute while the pairs stream; see
/// [`SplitPhaseExchange`] for the wait side.
///
/// Without a multi-worker pool (or below the backend's serial cutoff) the
/// unpack runs inline before returning — same buffers, same charges, zero
/// measured overlap.
pub(crate) fn split_execute_fused_wire<'e, T: Element>(
    fused: FusedPlan,
    tracker: &CommTracker,
    backend: &'e ExecBackend,
    srcs: &[&[Vec<T>]],
    dst_sizes: &[Vec<usize>],
) -> SplitPhaseExchange<'e, T> {
    for part in fused.parts() {
        part.charge_directory(tracker);
    }
    let batch = fused.message_batch(T::BYTES);
    let messages = batch.len();
    let bytes: usize = batch.iter().map(|m| m.2).sum();
    let post_span = trace::OpenSpan::begin_with(trace::Phase::Post, || format!("{messages} msgs"));
    let pending = tracker.post_many(batch);
    post_span.end();
    let copy_secs = wire_copy_seconds(&fused, T::BYTES, tracker);

    // Destination buffers (default-filled) with the stay-local runs copied
    // in now — exactly the local half of `wire_copy_for_dest`.
    let pack_span = trace::OpenSpan::begin_static(trace::Phase::WirePack, "split pack");
    let mut bufs: Vec<Vec<Mutex<Vec<T>>>> = Vec::with_capacity(fused.parts().len());
    for (idx, sizes) in dst_sizes.iter().enumerate() {
        let part = &fused.parts()[idx];
        let mut per_proc = Vec::with_capacity(sizes.len());
        for (d, &len) in sizes.iter().enumerate() {
            let mut buf = vec![T::default(); len];
            if let Some(&ti) = fused.pair_transfer[idx].get(&(d, d)) {
                let src_local = &srcs[idx][d];
                for run in &part.transfers()[ti].runs {
                    if run.len == 0 {
                        continue;
                    }
                    buf[run.dst_start..run.dst_start + run.len]
                        .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
                }
            }
            per_proc.push(Mutex::new(buf));
        }
        bufs.push(per_proc);
    }

    // Pack every crossing pair's wire buffer — the pack half of
    // `wire_copy_for_dest`, reading the borrowed sources caller-side.
    let crossing: Vec<usize> = fused
        .pair_elements
        .iter()
        .enumerate()
        .filter(|&(_, &((s, d), total))| s != d && total > 0)
        .map(|(i, _)| i)
        .collect();
    let mut wires: Vec<Vec<T>> = crossing
        .iter()
        .map(|&pi| {
            let ((s, d), total) = fused.pair_elements[pi];
            let mut wire = vec![T::default(); total];
            for sl in &fused.pair_slices[pi] {
                if sl.elements == 0 {
                    continue;
                }
                let t = &fused.parts()[sl.part].transfers()[fused.pair_transfer[sl.part][&(s, d)]];
                let src_local = &srcs[sl.part][s];
                let mut off = sl.wire_offset;
                for run in &t.runs {
                    if run.len == 0 {
                        continue;
                    }
                    wire[off..off + run.len]
                        .copy_from_slice(&src_local[run.src_start..run.src_start + run.len]);
                    off += run.len;
                }
                debug_assert_eq!(off, sl.wire_offset + sl.elements, "slice fills its window");
            }
            wire
        })
        .collect();

    // Frame each wire over its pristine payload, then arm any injected
    // corruption: flip one bit of one wire, remember the pristine element
    // (the repair is a modelled retransmission, charged now, caller-side,
    // so the accounting is deterministic whichever rank unpacks the item).
    let framing = wire_framing_enabled();
    let frames: Vec<Option<WireFrame>> = if framing {
        wires.iter().map(|w| Some(frame_wire(w))).collect()
    } else {
        vec![None; wires.len()]
    };
    pack_span.end();
    let sabotage = arm_corruption(&fused, tracker).map(|(pi, elem_seed, bit)| {
        let k = crossing
            .iter()
            .position(|&c| c == pi)
            .expect("corruption is only armed on a crossing pair");
        let e = (elem_seed as usize) % wires[k].len();
        let orig = wires[k][e];
        wires[k][e] = orig.flip_bit(bit);
        let ((s, d), total) = fused.pair_elements[pi];
        tracker.record_fault();
        tracker.charge_retransmissions(s, d, total * T::BYTES, 1);
        SplitSabotage {
            item: k,
            elem: e,
            orig,
        }
    });

    let mut remaining = vec![0usize; fused.pairs_by_dst.len()];
    for &pi in &crossing {
        remaining[fused.pair_elements[pi].0 .1] += 1;
    }
    let unpack_bytes = fused.moved_elements() * T::BYTES;

    // Stream through the pool when there are background workers to stream
    // on and the volume clears the backend's cutoff; otherwise unpack
    // inline now (no overlap, identical results).
    let streaming_pool = match backend {
        ExecBackend::Threaded(t)
            if !crossing.is_empty() && unpack_bytes >= t.effective_serial_cutoff() =>
        {
            t.pool().filter(|p| p.workers() > 1)
        }
        _ => None,
    };
    // Fault gating of the streaming decision, polled caller-side only when
    // streaming would actually happen (keeps the schedule deterministic):
    // a fired cancel falls back to the inline (blocking) drain; with dead
    // workers streaming is never attempted; a fired worker-death still
    // streams but arms one background rank to die mid-stream — the
    // recovery path adopts its items.
    let mut die_rank = None;
    let streaming_pool = match (streaming_pool, tracker.fault_injector()) {
        (Some(pool), Some(inj)) => {
            if inj.cancel_streaming() {
                tracker.record_fault();
                tracker.record_fallback();
                None
            } else if inj.dead_workers() > 0 {
                None
            } else {
                if inj.worker_death() {
                    inj.mark_worker_dead();
                    tracker.record_fault();
                    tracker.record_fallback();
                    let width = 1 + crossing.len().min(pool.workers() - 1);
                    die_rank = Some(1 + inj.pick(width - 1));
                }
                Some(pool)
            }
        }
        (sp, _) => sp,
    };

    let shared = Arc::new(SplitShared {
        fused,
        crossing,
        wires: wires.into_iter().map(Mutex::new).collect(),
        frames,
        verify: tracker.fault_injector().is_some(),
        sabotage,
        die_rank,
        bufs,
        claim: AtomicUsize::new(0),
        remaining_by_dst: remaining.into_iter().map(AtomicUsize::new).collect(),
        abandoned: Mutex::new(Vec::new()),
        died: AtomicBool::new(false),
        fatal: Mutex::new(None),
        background_nanos: AtomicU64::new(0),
        help_nanos: AtomicU64::new(0),
    });
    let ticket = match streaming_pool {
        Some(pool) => {
            let job = Arc::clone(&shared);
            // Rank 0 (the caller) helps at the wait; wake only as many
            // background ranks as there are pairs to unpack.
            let width = 1 + shared.crossing.len().min(pool.workers() - 1);
            Some(pool.submit(width, Arc::new(move |rank| job.drain(rank))))
        }
        None => {
            shared.drain(0);
            None
        }
    };
    SplitPhaseExchange {
        shared,
        ticket,
        pending: Some(pending),
        copy_secs,
        messages,
        bytes,
        tracker: tracker.clone(),
        posted_at: Instant::now(),
        span: Some(trace::OpenSpan::begin_with(
            trace::Phase::SplitPending,
            || format!("{messages} msgs"),
        )),
    }
}

/// A single-array redistribution caught between its post and its wait —
/// the split-phase counterpart of
/// [`redistribute_cached_with`](crate::redistribute_cached_with), built on
/// [`SplitPhaseExchange`].
///
/// Created by [`redistribute_split`] after packing the crossing payloads
/// and posting the modelled messages.  The caller can then:
///
/// 1. run any work that does not touch the array while the destination
///    buffers stream in on the pool's background workers,
/// 2. pipeline per-destination: [`SplitRedistribute::wait_dest`]`(d)`
///    followed by [`SplitRedistribute::with_dest_mut`]`(d, ..)` operates
///    on destination `d`'s *new* local buffer while other destinations
///    are still in flight (the ADI sweep works this way),
/// 3. call [`SplitRedistribute::finish_into`] to install the new locals
///    and descriptor — results bitwise identical to the blocking path.
pub struct SplitRedistribute<'e, T: Element> {
    inner: SplitPhaseExchange<'e, T>,
    new_dist: vf_dist::Distribution,
    src_fingerprint: u64,
    moved: usize,
    stayed: usize,
    plan_messages: usize,
    plan_bytes: usize,
}

impl<T: Element> SplitRedistribute<'_, T> {
    /// The distribution the array will have after
    /// [`SplitRedistribute::finish_into`].
    pub fn new_dist(&self) -> &vf_dist::Distribution {
        &self.new_dist
    }

    /// Whether the unpack is streaming on background workers.
    pub fn is_streaming(&self) -> bool {
        self.inner.is_streaming()
    }

    /// Blocks until destination processor `d`'s new local buffer is fully
    /// assembled (helping unpack while waiting); other destinations may
    /// still be in flight.
    pub fn wait_dest(&self, d: usize) {
        self.inner.wait_dest(d);
    }

    /// Runs `f` on destination processor `d`'s new local buffer.  Call
    /// [`SplitRedistribute::wait_dest`]`(d)` first; mutations made here are
    /// what [`SplitRedistribute::finish_into`] installs.
    pub fn with_dest_mut<R>(&self, d: usize, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        self.inner.with_dest_mut(0, d, f)
    }

    /// Completes the exchange and installs the new locals and descriptor
    /// into `array` (which must still carry the distribution the plan was
    /// posted from), broadcasting to replicated copies exactly like the
    /// blocking path.
    ///
    /// Cancels the redistribution without touching the array: drains the
    /// in-flight unpack and settles the posted charges (see
    /// [`SplitPhaseExchange::cancel`]); the array keeps its old
    /// distribution.  Equivalent to dropping the handle.
    pub fn cancel(self) {
        self.inner.cancel();
    }

    /// # Errors
    /// [`RuntimeError::PlanMismatch`] if `array` was redistributed between
    /// the post and this call; [`RuntimeError::CorruptMessage`] if a wire
    /// buffer failed validation and could not be repaired (the array is
    /// left untouched on its old distribution).
    pub fn finish_into(
        self,
        array: &mut DistArray<T>,
        tracker: &CommTracker,
    ) -> Result<(RedistReport, SplitExecReport)> {
        if array.dist().fingerprint() != self.src_fingerprint {
            return Err(RuntimeError::PlanMismatch {
                expected: self.src_fingerprint,
                found: array.dist().fingerprint(),
            });
        }
        let (mut bufs, report) = self.inner.wait(tracker)?;
        let locals = bufs.pop().expect("exactly one fused part");
        array.replace(self.new_dist, locals);
        array.broadcast_canonical();
        Ok((
            RedistReport {
                moved_elements: self.moved,
                stayed_elements: self.stayed,
                messages: self.plan_messages,
                bytes: self.plan_bytes,
            },
            report,
        ))
    }
}

/// Posts a split-phase redistribution of `array` to `new_dist`: plans (or
/// reuses) the schedule through `cache`, packs the crossing payloads,
/// posts the aggregated messages, copies the stay-local runs, and returns
/// with the per-destination unpacks streaming on `backend`'s pool (inline
/// when the backend is serial or the volume is below its cutoff).  The
/// array itself is untouched until [`SplitRedistribute::finish_into`];
/// it must not be mutated while the handle is live (the packed payloads
/// would silently ignore the mutation).
///
/// # Errors
/// Exactly as [`redistribute_cached_with`](crate::redistribute_cached_with):
/// everything is validated before any message is posted.
pub fn redistribute_split<'e, T: Element>(
    array: &DistArray<T>,
    new_dist: vf_dist::Distribution,
    tracker: &CommTracker,
    cache: &crate::plan::PlanCache,
    backend: &'e ExecBackend,
) -> Result<SplitRedistribute<'e, T>> {
    let plan = cache.redistribute_plan(array.dist(), &new_dist)?;
    plan.check_executable(array.dist(), tracker)?;
    let _span = trace::OpenSpan::begin_static(trace::Phase::Redistribute, "split post");
    let fused = FusedPlan::fuse(vec![plan])?;
    let (dst_sizes, src_fingerprint, moved, stayed, plan_messages, plan_bytes) = {
        let part = &fused.parts()[0];
        let mut sizes = vec![0usize; part.total_procs()];
        for &q in new_dist.proc_ids() {
            sizes[q.0] = new_dist.local_size(q);
        }
        (
            sizes,
            part.src_fingerprint(),
            part.moved_elements(),
            part.stayed_elements(),
            part.num_messages(),
            part.bytes_for(T::BYTES),
        )
    };
    let inner = split_execute_fused_wire(fused, tracker, backend, &[array.locals()], &[dst_sizes]);
    Ok(SplitRedistribute {
        inner,
        new_dist,
        src_fingerprint,
        moved,
        stayed,
        plan_messages,
        plan_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_redistribute;
    use vf_dist::{DistType, Distribution, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn dist_1d(t: DistType, n: usize, p: usize) -> Distribution {
        Distribution::new(t, IndexDomain::d1(n), ProcessorView::linear(p)).unwrap()
    }

    fn redistribute_with<E: PlanExecutor>(
        executor: &E,
        n: usize,
        p: usize,
    ) -> (Vec<f64>, ExecReport, vf_machine::CommStats) {
        let from = dist_1d(DistType::block1d(), n, p);
        let to = dist_1d(DistType::cyclic1d(1), n, p);
        let plan = plan_redistribute(&from, &to).unwrap();
        let a = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64 * 0.5);
        let tracker = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.25));
        let mut dst_sizes = vec![0usize; p];
        for &q in to.proc_ids() {
            dst_sizes[q.0] = to.local_size(q);
        }
        let (bufs, report) = executor.execute(&plan, a.locals(), &dst_sizes, &tracker, true);
        let flat: Vec<f64> = bufs.into_iter().flatten().collect();
        (flat, report, tracker.snapshot())
    }

    #[test]
    fn threaded_buffers_and_charges_match_serial() {
        let serial = redistribute_with(&SerialExecutor, 64, 4);
        let forced = ThreadedExecutor::with_workers(3).serial_cutoff_bytes(0);
        let threaded = redistribute_with(&forced, 64, 4);
        assert_eq!(serial.0, threaded.0, "copied buffers differ");
        assert_eq!(serial.1, threaded.1, "charged totals differ");
        assert_eq!(serial.2, threaded.2, "tracker snapshots differ");
        assert_eq!(forced.name(), "threaded");
        assert_eq!(SerialExecutor.name(), "serial");
    }

    #[test]
    fn small_plans_take_the_serial_path_under_the_cutoff() {
        // Below the cutoff the threaded executor degrades to the serial
        // loop; the observable behaviour is identical either way, so this
        // only checks the configuration plumbing.
        let t = ThreadedExecutor::with_workers(4);
        assert_eq!(
            t.effective_serial_cutoff(),
            ThreadedExecutor::DEFAULT_SERIAL_CUTOFF_BYTES
        );
        assert_eq!(t.workers(), 4);
        assert!(t.pool().is_none(), "with_workers is the fresh-spawn mode");
        // Attaching a pool drops the default cutoff to the pooled
        // crossover; an explicit override always wins.
        let pooled = t.clone().pooled(vf_machine::pool::global());
        assert_eq!(
            pooled.effective_serial_cutoff(),
            ThreadedExecutor::DEFAULT_POOLED_CUTOFF_BYTES
        );
        assert!(pooled.pool().is_some());
        assert_eq!(pooled.with_serial_cutoff(7).effective_serial_cutoff(), 7);
        let auto = ExecBackend::auto();
        match auto {
            ExecBackend::Threaded(t) => assert!(t.workers() > 1),
            ExecBackend::Serial => {
                assert_eq!(
                    std::thread::available_parallelism().map(|n| n.get()).ok(),
                    Some(1)
                );
            }
            // Only reachable when the test environment sets
            // VF_EXEC_BACKEND=sharded explicitly.
            ExecBackend::Sharded(s) => assert_eq!(s.name(), "sharded"),
        }
        assert_eq!(ExecBackend::default().name(), "serial");
    }

    #[test]
    fn hot_destination_split_matches_serial_bitwise() {
        // Everything funnels into P0 (a gather-like repartition): the
        // round-robin destination partition would serialise on one worker,
        // so the threaded executor splits P0's run list across workers.
        // Results and accounting must stay bitwise identical to serial.
        let n = 4096usize;
        let p = 8usize;
        let from = dist_1d(DistType::cyclic1d(3), n, p);
        let mut sizes = vec![0usize; p];
        sizes[0] = n;
        let to = dist_1d(DistType::gen_block1d(sizes), n, p);
        let plan = plan_redistribute(&from, &to).unwrap();
        let a = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64 * 1.25);
        let mut dst_sizes = vec![0usize; p];
        for &q in to.proc_ids() {
            dst_sizes[q.0] = to.local_size(q);
        }
        let t_serial = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.25));
        let (serial, rs) = SerialExecutor.execute(&plan, a.locals(), &dst_sizes, &t_serial, true);
        for workers in [2, 3, 5] {
            // Both dispatch modes must split the hot destination
            // identically: the fresh-spawn scoped threads and the
            // persistent pool.
            let pool = Arc::new(vf_machine::WorkerPool::new(workers));
            for forced in [
                ThreadedExecutor::with_workers(workers).serial_cutoff_bytes(0),
                ThreadedExecutor::with_pool(Arc::clone(&pool)).serial_cutoff_bytes(0),
            ] {
                let t_thr = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.25));
                let (threaded, rt) = forced.execute(&plan, a.locals(), &dst_sizes, &t_thr, true);
                assert_eq!(serial, threaded, "buffers differ with {workers} workers");
                assert_eq!(rs, rt);
                assert_eq!(t_serial.snapshot(), t_thr.snapshot());
            }
            assert!(pool.jobs_dispatched() > 0, "pooled run used the pool");
        }
        // A partial hot receiver (most but not all traffic to P1, scattered
        // run layout) exercises the gap-preserving split path too.
        let mut sizes = vec![8usize; p];
        sizes[1] = n - 8 * (p - 1);
        let to = dist_1d(DistType::gen_block1d(sizes), n, p);
        let plan = plan_redistribute(a.dist(), &to).unwrap();
        let mut dst_sizes = vec![0usize; p];
        for &q in to.proc_ids() {
            dst_sizes[q.0] = to.local_size(q);
        }
        let (serial, _) = SerialExecutor.execute(&plan, a.locals(), &dst_sizes, &t_serial, true);
        let forced = ThreadedExecutor::with_workers(4).serial_cutoff_bytes(0);
        let (threaded, _) = forced.execute(&plan, a.locals(), &dst_sizes, &t_serial, true);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn copy_phase_is_charged_as_compute_and_hides_communication() {
        let n = 64usize;
        let p = 4usize;
        let from = dist_1d(DistType::block1d(), n, p);
        let to = dist_1d(DistType::cyclic1d(1), n, p);
        let plan = plan_redistribute(&from, &to).unwrap();
        let a = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64);
        let mut dst_sizes = vec![0usize; p];
        for &q in to.proc_ids() {
            dst_sizes[q.0] = to.local_size(q);
        }
        // Baseline: copies priced at zero — no compute time, full
        // communication time, exactly the pre-credit behaviour.
        let zero_rate = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
        SerialExecutor.execute(&plan, a.locals(), &dst_sizes, &zero_rate, true);
        let base = zero_rate.snapshot();
        assert_eq!(base.total_compute_time(), 0.0);
        assert!(base.critical_time() > 0.0);

        // A copy rate makes the packing work visible as compute time and
        // hides the same amount of communication time behind it.
        let priced = CommTracker::new(
            p,
            CostModel::from_alpha_beta(1.0, 0.5).with_copy_bandwidth(1e6),
        );
        SerialExecutor.execute(&plan, a.locals(), &dst_sizes, &priced, true);
        let credited = priced.snapshot();
        // Message and byte counts are untouched by the credit.
        assert_eq!(credited.total_messages(), base.total_messages());
        assert_eq!(credited.total_bytes(), base.total_bytes());
        // Copy work shows as compute, and per-processor communication time
        // shrinks by exactly the credited copy seconds (none hit zero with
        // this small rate).
        assert!(credited.total_compute_time() > 0.0);
        for (pp, (c, b)) in credited.per_proc().iter().zip(base.per_proc()).enumerate() {
            let credit: f64 = plan
                .transfers()
                .iter()
                .filter(|t| t.dst.0 == pp)
                .map(|t| (t.elements * 8) as f64 * priced.cost().copy_per_byte)
                .sum();
            assert!((b.comm_time - c.comm_time - credit).abs() < 1e-12, "P{pp}");
            assert!((c.compute_time - credit).abs() < 1e-12, "P{pp}");
        }
    }

    #[test]
    fn fusion_kind_rules_are_enforced() {
        let d = dist_1d(DistType::block1d(), 16, 4);
        let ghost = Arc::new(crate::plan::plan_ghost(&d, &[(1, 1)]).unwrap());
        let redist =
            Arc::new(plan_redistribute(&d, &dist_1d(DistType::cyclic1d(1), 16, 4)).unwrap());
        let gather = Arc::new(
            crate::plan::plan_gather(&d, &[(vf_dist::ProcId(0), vf_index::Point::d1(9))]).unwrap(),
        );
        // Homogeneous ghost sets fuse now; gather plans and mixed kinds do
        // not, and neither does an empty set.
        let fused_ghost = FusedPlan::fuse(vec![Arc::clone(&ghost), Arc::clone(&ghost)]).unwrap();
        assert_eq!(fused_ghost.kind(), PlanKind::Ghost);
        assert!(matches!(
            FusedPlan::fuse(vec![Arc::clone(&gather)]),
            Err(RuntimeError::FusionMismatch { .. })
        ));
        assert!(matches!(
            FusedPlan::fuse(vec![Arc::clone(&ghost), Arc::clone(&redist)]),
            Err(RuntimeError::FusionMismatch { .. })
        ));
        assert!(matches!(
            FusedPlan::fuse(Vec::new()),
            Err(RuntimeError::FusionMismatch { .. })
        ));
        // A ghost-kind fused plan cannot drive the redistribute executor.
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), 16, 4), |pt| {
            pt.coord(0) as f64
        });
        let mut b = a.clone();
        let tracker = CommTracker::new(4, CostModel::zero());
        assert!(matches!(
            execute_redistribute_fused(
                &mut [&mut a, &mut b],
                &fused_ghost,
                &tracker,
                &SerialExecutor
            ),
            Err(RuntimeError::FusionMismatch { .. })
        ));
    }

    #[test]
    fn wire_slices_tile_each_fused_pair() {
        let d = dist_1d(DistType::block1d(), 24, 4);
        let one = Arc::new(crate::plan::plan_ghost(&d, &[(1, 1)]).unwrap());
        let two = Arc::new(crate::plan::plan_ghost(&d, &[(2, 2)]).unwrap());
        let fused = FusedPlan::fuse(vec![Arc::clone(&one), Arc::clone(&two), one]).unwrap();
        let mut checked = 0usize;
        for &((src, dst), total) in &fused.pair_elements {
            let slices = fused.wire_slices(src, dst);
            assert!(!slices.is_empty());
            // Parts appear in fusion order and their payloads tile the
            // message without gaps — the remapping a receiver needs to
            // unpack each array's slots from the single wire message.
            let mut offset = 0usize;
            for s in slices {
                assert_eq!(s.wire_offset, offset, "{src}->{dst}");
                offset += s.elements;
            }
            assert_eq!(offset, total);
            assert!(slices.windows(2).all(|w| w[0].part < w[1].part));
            checked += 1;
        }
        assert!(checked > 0);
        assert!(
            fused.wire_slices(0, 0).is_empty(),
            "local pairs carry nothing"
        );
    }

    #[test]
    fn fused_class_charges_one_message_per_pair() {
        let n = 24usize;
        let p = 4usize;
        let from = dist_1d(DistType::block1d(), n, p);
        let to = dist_1d(DistType::cyclic1d(1), n, p);
        let plan = Arc::new(plan_redistribute(&from, &to).unwrap());
        let parts = vec![Arc::clone(&plan), Arc::clone(&plan), plan];
        let per_array_messages: usize = parts.iter().map(|p| p.num_messages()).sum();
        let fused = FusedPlan::fuse(parts).unwrap();
        assert!(fused.num_messages() < per_array_messages);
        assert!(fused.num_messages() <= p * (p - 1));

        let mut a = DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64);
        let mut b = DistArray::from_fn("B", from.clone(), |pt| -(pt.coord(0) as f64));
        let mut c = DistArray::from_fn("C", from.clone(), |pt| pt.coord(0) as f64 * 3.0);
        let dense = (a.to_dense(), b.to_dense(), c.to_dense());
        let tracker = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
        let (reports, exec) = execute_redistribute_fused(
            &mut [&mut a, &mut b, &mut c],
            &fused,
            &tracker,
            &SerialExecutor,
        )
        .unwrap();
        // Data preserved per array; bytes are the sum of the parts.
        assert_eq!(a.to_dense(), dense.0);
        assert_eq!(b.to_dense(), dense.1);
        assert_eq!(c.to_dense(), dense.2);
        assert_eq!(exec.messages, fused.num_messages());
        assert_eq!(exec.bytes, fused.bytes_for(8));
        assert_eq!(
            reports.iter().map(|r| r.bytes).sum::<usize>(),
            exec.bytes,
            "fusion never changes the byte volume"
        );
        // The tracker saw exactly the fused counts.
        let stats = tracker.snapshot();
        assert_eq!(stats.total_messages(), exec.messages);
        assert_eq!(stats.total_bytes(), exec.bytes);
    }

    #[test]
    fn wire_fused_redistribute_matches_per_part_bitwise() {
        // A class of three arrays with two *different* target layouts in
        // one fusion: the wire-packed executor must produce bitwise the
        // per-part buffers, identical reports and identical tracker
        // traffic, serial and pooled alike.
        let n = 48usize;
        let p = 4usize;
        let from = dist_1d(DistType::block1d(), n, p);
        let to_a = dist_1d(DistType::cyclic1d(1), n, p);
        let to_b = dist_1d(DistType::gen_block1d(vec![3, 21, 12, 12]), n, p);
        let plan_a = Arc::new(plan_redistribute(&from, &to_a).unwrap());
        let plan_b = Arc::new(plan_redistribute(&from, &to_b).unwrap());
        let fused =
            FusedPlan::fuse(vec![Arc::clone(&plan_a), Arc::clone(&plan_b), plan_a]).unwrap();

        let build = || {
            (
                DistArray::from_fn("A", from.clone(), |pt| pt.coord(0) as f64 * 1.5),
                DistArray::from_fn("B", from.clone(), |pt| -(pt.coord(0) as f64)),
                DistArray::from_fn("C", from.clone(), |pt| pt.coord(0) as f64 + 0.25),
            )
        };
        let (mut a1, mut b1, mut c1) = build();
        let t1 = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
        let (reports1, exec1) = execute_redistribute_fused(
            &mut [&mut a1, &mut b1, &mut c1],
            &fused,
            &t1,
            &SerialExecutor,
        )
        .unwrap();

        let pool = Arc::new(vf_machine::WorkerPool::new(3));
        for (name, executor) in [
            ("serial-wire", ExecBackend::Serial),
            (
                "pooled-wire",
                ExecBackend::Threaded(
                    ThreadedExecutor::with_pool(Arc::clone(&pool)).with_serial_cutoff(0),
                ),
            ),
        ] {
            let (mut a2, mut b2, mut c2) = build();
            let t2 = CommTracker::new(p, CostModel::from_alpha_beta(1.0, 0.5));
            let (reports2, exec2) = execute_redistribute_fused_wire(
                &mut [&mut a2, &mut b2, &mut c2],
                &fused,
                &t2,
                &executor,
            )
            .unwrap();
            assert_eq!(a1.to_dense(), a2.to_dense(), "{name}");
            assert_eq!(b1.to_dense(), b2.to_dense(), "{name}");
            assert_eq!(c1.to_dense(), c2.to_dense(), "{name}");
            assert_eq!(reports1, reports2, "{name}");
            assert_eq!(exec1, exec2, "{name}");
            assert_eq!(t1.snapshot(), t2.snapshot(), "{name}");
        }
        // One message per crossing pair, bytes conserved over the parts.
        assert_eq!(exec1.messages, fused.num_messages());
        assert_eq!(exec1.bytes, reports1.iter().map(|r| r.bytes).sum::<usize>());
        assert!(pool.jobs_dispatched() > 0, "the wire path used the pool");
    }

    #[test]
    fn wire_fused_validates_before_moving() {
        let from = dist_1d(DistType::block1d(), 16, 4);
        let to = dist_1d(DistType::cyclic1d(1), 16, 4);
        let plan = Arc::new(plan_redistribute(&from, &to).unwrap());
        let fused = FusedPlan::fuse(vec![Arc::clone(&plan), plan]).unwrap();
        let mut good = DistArray::from_fn("G", from, |pt| pt.coord(0) as f64);
        let mut bad = DistArray::from_fn("B", to, |pt| pt.coord(0) as f64);
        let before = good.to_dense();
        let tracker = CommTracker::new(4, CostModel::zero());
        let err = execute_redistribute_fused_wire(
            &mut [&mut good, &mut bad],
            &fused,
            &tracker,
            &SerialExecutor,
        );
        assert!(matches!(err, Err(RuntimeError::PlanMismatch { .. })));
        assert_eq!(good.to_dense(), before, "no data moved on failure");
        assert_eq!(tracker.snapshot().total_messages(), 0);
    }

    #[test]
    fn fused_execution_validates_before_moving() {
        let n = 16usize;
        let p = 4usize;
        let from = dist_1d(DistType::block1d(), n, p);
        let to = dist_1d(DistType::cyclic1d(1), n, p);
        let plan = Arc::new(plan_redistribute(&from, &to).unwrap());
        let fused = FusedPlan::fuse(vec![Arc::clone(&plan), plan]).unwrap();
        let mut good = DistArray::from_fn("G", from, |pt| pt.coord(0) as f64);
        // The second array is *not* block-distributed: the fused execute
        // must fail before touching either array.
        let mut bad = DistArray::from_fn("B", to, |pt| pt.coord(0) as f64);
        let before = good.to_dense();
        let tracker = CommTracker::new(p, CostModel::zero());
        let err = execute_redistribute_fused(
            &mut [&mut good, &mut bad],
            &fused,
            &tracker,
            &SerialExecutor,
        );
        assert!(matches!(err, Err(RuntimeError::PlanMismatch { .. })));
        assert_eq!(good.to_dense(), before, "no data moved on failure");
        assert_eq!(tracker.snapshot().total_messages(), 0);
    }

    #[test]
    fn fused_arity_mismatch_rejected() {
        let from = dist_1d(DistType::block1d(), 8, 2);
        let to = dist_1d(DistType::cyclic1d(1), 8, 2);
        let plan = Arc::new(plan_redistribute(&from, &to).unwrap());
        let fused = FusedPlan::fuse(vec![plan]).unwrap();
        let mut a = DistArray::from_fn("A", from, |pt| pt.coord(0) as f64);
        let mut b = a.clone();
        let tracker = CommTracker::new(2, CostModel::zero());
        let err =
            execute_redistribute_fused(&mut [&mut a, &mut b], &fused, &tracker, &SerialExecutor);
        assert!(matches!(err, Err(RuntimeError::FusionMismatch { .. })));
    }

    #[test]
    fn wire_checksum_detects_every_single_bit_flip() {
        // The fold is GF(2)-linear over the payload bits, so a single
        // flipped bit must always change the sum — corruption can never be
        // silently unpacked.  Exhaustive over every bit of a small wire.
        let wire: Vec<f64> = vec![0.0, 1.5, -2.25, 1.0e300, f64::MIN_POSITIVE];
        let clean = wire_checksum(&wire);
        for e in 0..wire.len() {
            for bit in 0..64u32 {
                let mut corrupt = wire.clone();
                corrupt[e] = corrupt[e].flip_bit(bit);
                assert_ne!(
                    wire_checksum(&corrupt),
                    clean,
                    "flip of element {e} bit {bit} went undetected"
                );
            }
        }
        // Length is mixed into the sum: truncation is detected even when
        // the removed element is all zeros.
        assert_ne!(wire_checksum(&wire[..4]), clean);
    }

    #[test]
    fn verify_wire_reports_corrupt_message() {
        let mut wire: Vec<u32> = (0..16).collect();
        let frame = frame_wire(&wire);
        assert_eq!(frame.elements, 16);
        verify_wire(&wire, &frame, 0, 1).unwrap();
        wire[7] = wire[7].flip_bit(3);
        let err = verify_wire(&wire, &frame, 2, 5).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::CorruptMessage {
                src: 2,
                dst: 5,
                seq: frame.seq,
            }
        );
        // Restoring the pristine element (the modelled retransmission)
        // makes the same frame verify again.
        wire[7] = wire[7].flip_bit(3);
        verify_wire(&wire, &frame, 2, 5).unwrap();
    }

    #[test]
    fn framing_toggle_round_trips() {
        // Framing is on by default; the bench-only switch turns it off and
        // back on.  Safe to race with the other unit tests: with framing
        // off wires simply skip validation, results are unchanged.
        assert!(wire_framing_enabled());
        set_wire_framing(false);
        assert!(!wire_framing_enabled());
        set_wire_framing(true);
        assert!(wire_framing_enabled());
    }

    #[test]
    fn wire_frames_carry_distinct_sequence_numbers() {
        let wire: Vec<f64> = vec![1.0, 2.0];
        let a = frame_wire(&wire);
        let b = frame_wire(&wire);
        assert_ne!(a.seq, b.seq);
        assert_eq!(a.checksum, b.checksum);
    }
}
