//! The element trait for distributed arrays.

/// Types that can be stored in a [`crate::DistArray`] and shipped between
/// simulated processors.
///
/// `BYTES` is used for message-size accounting in the cost model; the
/// byte-level encoding itself (little-endian) is only exercised by the
/// thread-backed SPMD paths, since the master-managed simulation moves
/// values directly.
pub trait Element: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// Number of bytes one element occupies on the wire.
    const BYTES: usize;

    /// Appends the little-endian encoding of the value to `out`.
    fn write_bytes(&self, out: &mut Vec<u8>);

    /// Decodes a value from exactly [`Element::BYTES`] bytes.
    fn read_bytes(bytes: &[u8]) -> Self;

    /// The value's stored bit pattern widened to 64 bits — the unit the
    /// wire-frame checksum folds over.  Values that compare equal must
    /// produce equal bits, and distinct bit patterns must produce
    /// distinct `to_bits64` results (within the low `BYTES · 8` bits).
    fn to_bits64(&self) -> u64;

    /// Reconstructs a value from [`Element::to_bits64`] output (only the
    /// low `BYTES · 8` bits are significant).
    fn from_bits64(bits: u64) -> Self;

    /// The value with stored bit `bit % (BYTES · 8)` flipped — guaranteed
    /// to differ bitwise from `self`, which is what makes injected wire
    /// corruption always detectable by the frame checksum.
    fn flip_bit(self, bit: u32) -> Self {
        let width = (Self::BYTES * 8) as u32;
        Self::from_bits64(self.to_bits64() ^ (1u64 << (bit % width)))
    }
}

macro_rules! impl_element_num {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(
            impl Element for $t {
                const BYTES: usize = $n;

                fn write_bytes(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }

                fn read_bytes(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes[..$n].try_into().expect("enough bytes"))
                }

                #[inline]
                fn to_bits64(&self) -> u64 {
                    let mut bits = [0u8; 8];
                    bits[..$n].copy_from_slice(&self.to_le_bytes());
                    u64::from_le_bytes(bits)
                }

                #[inline]
                fn from_bits64(bits: u64) -> Self {
                    <$t>::from_le_bytes(bits.to_le_bytes()[..$n].try_into().expect("enough bytes"))
                }
            }
        )*
    };
}

impl_element_num!(
    f64 => 8,
    f32 => 4,
    i64 => 8,
    i32 => 4,
    u64 => 8,
    u32 => 4,
    u8 => 1,
);

impl Element for bool {
    const BYTES: usize = 1;

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn read_bytes(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }

    #[inline]
    fn to_bits64(&self) -> u64 {
        u64::from(*self)
    }

    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits & 1 != 0
    }

    /// All stored bit patterns of a `bool` map to the two values, so the
    /// only flip that is guaranteed to change the *value* (not just an
    /// ignored padding bit) is logical negation.
    fn flip_bit(self, _bit: u32) -> Self {
        !self
    }
}

/// Encodes a slice of elements to a byte buffer.
pub fn encode_slice<T: Element>(values: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * T::BYTES);
    for v in values {
        v.write_bytes(&mut out);
    }
    out
}

/// Decodes a byte buffer produced by [`encode_slice`].
pub fn decode_slice<T: Element>(bytes: &[u8]) -> Vec<T> {
    bytes.chunks_exact(T::BYTES).map(T::read_bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_round_trips() {
        fn check<T: Element>(values: &[T]) {
            let encoded = encode_slice(values);
            assert_eq!(encoded.len(), values.len() * T::BYTES);
            assert_eq!(decode_slice::<T>(&encoded), values);
        }
        check(&[1.5f64, -2.0, 0.0]);
        check(&[1.5f32, -2.0]);
        check(&[-7i64, 9]);
        check(&[-7i32, 9]);
        check(&[7u64, 9]);
        check(&[7u32, 9]);
        check(&[0u8, 255]);
        check(&[true, false, true]);
    }

    #[test]
    fn bit_flips_always_change_the_value() {
        fn check<T: Element>(values: &[T]) {
            let width = (T::BYTES * 8) as u32;
            for &v in values {
                assert_eq!(T::from_bits64(v.to_bits64()), v);
                for bit in 0..width {
                    let flipped = v.flip_bit(bit);
                    assert_ne!(
                        flipped.to_bits64(),
                        v.to_bits64(),
                        "{v:?} bit {bit} must change the stored pattern"
                    );
                }
            }
        }
        check(&[0.0f64, 1.5, -2.0, f64::MAX]);
        check(&[0.0f32, 1.5, -2.0]);
        check(&[0i64, -7, i64::MAX]);
        check(&[0i32, -7]);
        check(&[0u64, 7, u64::MAX]);
        check(&[0u32, 7]);
        check(&[0u8, 255]);
        check(&[true, false]);
    }

    #[test]
    fn sizes_match_wire_format() {
        assert_eq!(<f64 as Element>::BYTES, 8);
        assert_eq!(<f32 as Element>::BYTES, 4);
        assert_eq!(<u8 as Element>::BYTES, 1);
        assert_eq!(<bool as Element>::BYTES, 1);
    }
}
