//! The realisation of the executable `DISTRIBUTE` statement (paper §3.2.2).
//!
//! Data motion runs through the unified communication-plan layer
//! ([`crate::plan`]): [`plan_redistribute`](crate::plan::plan_redistribute)
//! derives the run-length-encoded (sender, receiver) schedule once, and
//! [`execute_redistribute`] replays it — a single pass over the runs with
//! one aggregated cost-model charge per message.  Iterative codes reuse
//! plans through a [`PlanCache`] via [`redistribute_cached`].

use crate::exec::{FusedPlan, PlanExecutor, SerialExecutor};
use crate::plan::{plan_redistribute, CommPlan, PlanCache, PlanIndex, PlanKind};
use crate::shard::{ShardedArray, ShardedExecutor};
use crate::{DistArray, Element, Result, RuntimeError};
use vf_dist::Distribution;
use vf_machine::{trace, CommTracker};

/// Options controlling how a redistribution is carried out.
#[derive(Debug, Clone)]
pub struct RedistOptions {
    /// The `NOTRANSFER` attribute of the `DISTRIBUTE` statement (paper
    /// §2.4): only the access function (descriptor) is changed and the
    /// elements are *not* physically moved.  The new local buffers hold
    /// default values; the program is expected to overwrite them before
    /// reading (which is exactly the contract the paper gives the user).
    pub notransfer: bool,
    /// Aggregate all elements travelling between one pair of processors
    /// into a single message (the paper's "efficient pre-compiled routine").
    /// When `false`, every element is charged as its own message — the
    /// naive strategy used as an ablation baseline in experiment E4.
    pub aggregate: bool,
}

impl Default for RedistOptions {
    fn default() -> Self {
        Self {
            notransfer: false,
            aggregate: true,
        }
    }
}

impl RedistOptions {
    /// The default options with `NOTRANSFER` set.
    pub fn notransfer() -> Self {
        Self {
            notransfer: true,
            ..Self::default()
        }
    }

    /// The default options with per-element (non-aggregated) messages.
    pub fn element_wise() -> Self {
        Self {
            aggregate: false,
            ..Self::default()
        }
    }
}

/// What a redistribution did: element movement and the communication it
/// generated (also charged to the [`CommTracker`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedistReport {
    /// Elements whose owner changed (and were therefore sent over the
    /// network).
    pub moved_elements: usize,
    /// Elements that stayed on their previous owner.
    pub stayed_elements: usize,
    /// Messages charged to the cost model.
    pub messages: usize,
    /// Bytes charged to the cost model.
    pub bytes: usize,
}

/// Redistributes `array` to `new_dist`, moving data from old owners to new
/// owners and charging the resulting messages to `tracker`.
///
/// This follows the three per-processor steps of §3.2.2: the new
/// distribution (and its access functions) has already been evaluated by the
/// caller (step 1); connected arrays are each redistributed by the language
/// layer with their own call (step 2); this function performs step 3 — each
/// processor determines the new locations of its current local data, "sends"
/// it there, and receives data from other processors.  Data motion is
/// suppressed entirely under `NOTRANSFER`.
pub fn redistribute<T: Element>(
    array: &mut DistArray<T>,
    new_dist: Distribution,
    tracker: &CommTracker,
    opts: &RedistOptions,
) -> Result<RedistReport> {
    redistribute_with(array, new_dist, tracker, opts, &SerialExecutor)
}

/// [`redistribute`] with an explicit execution backend — the copies run
/// through `executor` (e.g. [`crate::exec::ThreadedExecutor`]), the result
/// is bit-identical to serial execution.
pub fn redistribute_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    new_dist: Distribution,
    tracker: &CommTracker,
    opts: &RedistOptions,
    executor: &E,
) -> Result<RedistReport> {
    if opts.notransfer {
        return redistribute_notransfer(array, new_dist, tracker);
    }
    let plan = plan_redistribute(array.dist(), &new_dist)?;
    execute_redistribute_with(array, &plan, tracker, opts, executor)
}

/// [`redistribute`] with plan reuse: the (old, new) schedule is looked up
/// in `cache` by the distributions' structural fingerprints and planned
/// only on a miss, so iterative codes (the ADI pattern of Figure 1, the PIC
/// rebalancing of Figure 2) amortise the inspector cost across iterations
/// exactly as the PARTI routines the paper cites.
pub fn redistribute_cached<T: Element>(
    array: &mut DistArray<T>,
    new_dist: Distribution,
    tracker: &CommTracker,
    opts: &RedistOptions,
    cache: &PlanCache,
) -> Result<RedistReport> {
    redistribute_cached_with(array, new_dist, tracker, opts, cache, &SerialExecutor)
}

/// [`redistribute_cached`] with an explicit execution backend.
pub fn redistribute_cached_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    new_dist: Distribution,
    tracker: &CommTracker,
    opts: &RedistOptions,
    cache: &PlanCache,
    executor: &E,
) -> Result<RedistReport> {
    if opts.notransfer {
        return redistribute_notransfer(array, new_dist, tracker);
    }
    let plan = cache.redistribute_plan(array.dist(), &new_dist)?;
    execute_redistribute_with(array, &plan, tracker, opts, executor)
}

/// The `NOTRANSFER` path: only the descriptor changes, no plan is needed.
fn redistribute_notransfer<T: Element>(
    array: &mut DistArray<T>,
    new_dist: Distribution,
    tracker: &CommTracker,
) -> Result<RedistReport> {
    if new_dist.domain() != array.domain() {
        return Err(RuntimeError::DomainMismatch {
            left: array.domain().to_string(),
            right: new_dist.domain().to_string(),
        });
    }
    check_tracker(array.dist(), &new_dist, tracker)?;
    let total_procs = new_dist.procs().array().num_procs();
    let mut new_locals: Vec<Vec<T>> = vec![Vec::new(); total_procs];
    for &q in new_dist.proc_ids() {
        new_locals[q.0] = vec![T::default(); new_dist.local_size(q)];
    }
    array.replace(new_dist, new_locals);
    Ok(RedistReport::default())
}

fn check_tracker(old: &Distribution, new: &Distribution, tracker: &CommTracker) -> Result<()> {
    let needed = new
        .proc_ids()
        .iter()
        .chain(old.proc_ids())
        .map(|p| p.0 + 1)
        .max()
        .unwrap_or(1);
    if tracker.num_procs() < needed {
        return Err(RuntimeError::TrackerMismatch {
            tracker_procs: tracker.num_procs(),
            dist_procs: needed,
        });
    }
    Ok(())
}

/// The executor half of the `DISTRIBUTE` realisation with the serial
/// backend — see [`execute_redistribute_with`].
///
/// # Errors
/// [`RuntimeError::PlanMismatch`] if the array's current distribution is
/// not the one the plan was built for.
pub fn execute_redistribute<T: Element>(
    array: &mut DistArray<T>,
    plan: &CommPlan,
    tracker: &CommTracker,
    opts: &RedistOptions,
) -> Result<RedistReport> {
    execute_redistribute_with(array, plan, tracker, opts, &SerialExecutor)
}

/// The executor half of the `DISTRIBUTE` realisation: replays a
/// (possibly cached) [`CommPlan`] against the array through the chosen
/// [`PlanExecutor`] backend — every run is one `copy_from_slice` between
/// the sender's old buffer and the receiver's new buffer — posting the
/// aggregated per-pair messages before the copies and completing them
/// afterwards (or one message per element under
/// [`RedistOptions::element_wise`]).
///
/// # Errors
/// [`RuntimeError::PlanMismatch`] if the array's current distribution is
/// not the one the plan was built for.
pub fn execute_redistribute_with<T: Element, E: PlanExecutor>(
    array: &mut DistArray<T>,
    plan: &CommPlan,
    tracker: &CommTracker,
    opts: &RedistOptions,
    executor: &E,
) -> Result<RedistReport> {
    let PlanIndex::Redistribute { new_dist } = &plan.index else {
        return Err(RuntimeError::PlanMismatch {
            expected: plan.src_fingerprint(),
            found: array.dist().fingerprint(),
        });
    };
    debug_assert_eq!(plan.kind(), PlanKind::Redistribute);
    plan.check_executable(array.dist(), tracker)?;

    let _span = trace::OpenSpan::begin_with(trace::Phase::Redistribute, || {
        format!("{} moved", plan.moved_elements())
    });
    let mut dst_sizes = vec![0usize; plan.total_procs()];
    for &q in new_dist.proc_ids() {
        dst_sizes[q.0] = new_dist.local_size(q);
    }
    let (new_locals, exec) =
        executor.execute(plan, array.locals(), &dst_sizes, tracker, opts.aggregate);
    array.replace(new_dist.clone(), new_locals);
    // The plan targets the canonical first owner; every copy of a
    // replicated array receives the data.
    array.broadcast_canonical();
    Ok(RedistReport {
        moved_elements: plan.moved_elements(),
        stayed_elements: plan.stayed_elements(),
        messages: exec.messages,
        bytes: exec.bytes,
    })
}

/// [`crate::exec::execute_redistribute_fused_wire`] through the
/// distributed-memory backend: the arrays are scattered into rank-private
/// shards, every crossing pair's wire buffer travels over a real
/// [`vf_machine::spmd`] channel, and the new per-rank locals are gathered
/// back into the arrays.  Buffers, reports and modelled charges are
/// bitwise identical to the shared wire path; the real channel traffic is
/// additionally counted in the tracker's channel statistics.
///
/// # Errors
/// As the shared wire path (everything is validated before any data
/// moves), plus [`RuntimeError::Channel`] when a rank's channel operation
/// fails mid-region — the arrays are left on their *old* distribution in
/// that case.
pub fn execute_redistribute_fused_sharded<T: Element>(
    arrays: &mut [&mut DistArray<T>],
    fused: &FusedPlan,
    tracker: &CommTracker,
    executor: &ShardedExecutor,
) -> Result<(Vec<RedistReport>, crate::ExecReport)> {
    fused.check_parts(
        PlanKind::Redistribute,
        "execute_redistribute_fused_sharded",
        arrays.len(),
    )?;
    // Validate every (array, part) pair before moving anything.
    let mut new_dists = Vec::with_capacity(arrays.len());
    for (array, part) in arrays.iter().zip(fused.parts()) {
        let PlanIndex::Redistribute { new_dist } = &part.index else {
            return Err(RuntimeError::PlanMismatch {
                expected: part.src_fingerprint(),
                found: array.dist().fingerprint(),
            });
        };
        part.check_executable(array.dist(), tracker)?;
        new_dists.push(new_dist.clone());
    }
    let _span = trace::OpenSpan::begin_with(trace::Phase::Redistribute, || {
        format!("sharded {} arrays", arrays.len())
    });
    let dst_sizes: Vec<Vec<usize>> = fused
        .parts()
        .iter()
        .zip(&new_dists)
        .map(|(part, new_dist)| {
            let mut sizes = vec![0usize; part.total_procs()];
            for &q in new_dist.proc_ids() {
                sizes[q.0] = new_dist.local_size(q);
            }
            sizes
        })
        .collect();
    let shard_sets: Vec<ShardedArray<T>> =
        arrays.iter().map(|a| ShardedArray::scatter(a)).collect();
    let srcs: Vec<&ShardedArray<T>> = shard_sets.iter().collect();
    let copy_secs = crate::exec::wire_copy_seconds(fused, T::BYTES, tracker);
    let (bufs, exec) = crate::shard::sharded_fused_exchange(
        fused,
        tracker,
        executor,
        &srcs,
        &|idx, r| dst_sizes[idx].get(r).copied().unwrap_or(0),
        &copy_secs,
    )?;
    let mut reports = Vec::with_capacity(arrays.len());
    for (((array, part), new_dist), locals) in arrays
        .iter_mut()
        .zip(fused.parts())
        .zip(new_dists)
        .zip(bufs)
    {
        array.replace(new_dist, locals);
        array.broadcast_canonical();
        reports.push(RedistReport {
            moved_elements: part.moved_elements(),
            stayed_elements: part.stayed_elements(),
            messages: part.num_messages(),
            bytes: part.bytes_for(T::BYTES),
        });
    }
    Ok((reports, exec))
}

/// Single-array `DISTRIBUTE` through the distributed-memory backend, with
/// plan reuse through `cache` — the sharded counterpart of
/// [`redistribute_cached_with`] (always aggregated, never `NOTRANSFER`).
pub fn redistribute_sharded<T: Element>(
    array: &mut DistArray<T>,
    new_dist: &Distribution,
    tracker: &CommTracker,
    cache: &PlanCache,
    executor: &ShardedExecutor,
) -> Result<RedistReport> {
    let plan = cache.redistribute_plan(array.dist(), new_dist)?;
    let fused = FusedPlan::fuse(vec![plan])?;
    let (reports, _) = execute_redistribute_fused_sharded(&mut [array], &fused, tracker, executor)?;
    Ok(reports.into_iter().next().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_dist::{DistType, ProcessorView};
    use vf_index::IndexDomain;
    use vf_machine::CostModel;

    fn dist_1d(t: DistType, n: usize, p: usize) -> Distribution {
        Distribution::new(t, IndexDomain::d1(n), ProcessorView::linear(p)).unwrap()
    }

    #[test]
    fn block_to_cyclic_preserves_data() {
        let tracker = CommTracker::new(4, CostModel::zero());
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), 16, 4), |p| {
            p.coord(0) as f64
        });
        let before = a.to_dense();
        let report = redistribute(
            &mut a,
            dist_1d(DistType::cyclic1d(1), 16, 4),
            &tracker,
            &RedistOptions::default(),
        )
        .unwrap();
        assert_eq!(a.to_dense(), before);
        a.check_invariants().unwrap();
        assert_eq!(report.moved_elements + report.stayed_elements, 16);
        assert!(report.moved_elements > 0);
        assert_eq!(tracker.snapshot().total_bytes(), report.bytes);
    }

    #[test]
    fn identical_distribution_moves_nothing() {
        let tracker = CommTracker::new(3, CostModel::zero());
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), 12, 3), |p| {
            p.coord(0) as f64
        });
        let report = redistribute(
            &mut a,
            dist_1d(DistType::block1d(), 12, 3),
            &tracker,
            &RedistOptions::default(),
        )
        .unwrap();
        assert_eq!(report.moved_elements, 0);
        assert_eq!(report.messages, 0);
        assert_eq!(tracker.snapshot().total_messages(), 0);
    }

    #[test]
    fn figure1_column_to_row_redistribution() {
        // DISTRIBUTE V :: (BLOCK, :) applied to V(NX,NY) DIST(:, BLOCK).
        let tracker = CommTracker::new(4, CostModel::zero());
        let nx = 8usize;
        let cols = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(nx, nx),
            ProcessorView::linear(4),
        )
        .unwrap();
        let rows = Distribution::new(
            DistType::rows(),
            IndexDomain::d2(nx, nx),
            ProcessorView::linear(4),
        )
        .unwrap();
        let mut v = DistArray::from_fn("V", cols, |p| (p.coord(0) * 100 + p.coord(1)) as f64);
        let before = v.to_dense();
        let report = redistribute(&mut v, rows, &tracker, &RedistOptions::default()).unwrap();
        assert_eq!(v.to_dense(), before);
        // Each processor keeps its diagonal block (2x2 of the 4x4 processor
        // blocks): 8*8 elements, each proc owns 16, keeps 4.
        assert_eq!(report.stayed_elements, 4 * 4);
        assert_eq!(report.moved_elements, 64 - 16);
        // Aggregated messages: each of the 4 procs sends to 3 others.
        assert_eq!(report.messages, 12);
    }

    #[test]
    fn notransfer_changes_descriptor_without_motion() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), 8, 2), |p| {
            p.coord(0) as f64
        });
        let report = redistribute(
            &mut a,
            dist_1d(DistType::cyclic1d(1), 8, 2),
            &tracker,
            &RedistOptions::notransfer(),
        )
        .unwrap();
        assert_eq!(report.moved_elements, 0);
        assert_eq!(report.bytes, 0);
        assert_eq!(tracker.snapshot().total_messages(), 0);
        // Descriptor did change...
        assert_eq!(a.dist().dist_type(), &DistType::cyclic1d(1));
        // ...but the data was not transferred (buffers are default-filled).
        assert!(a.to_dense().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn element_wise_messages_cost_more() {
        let mk = || {
            DistArray::from_fn("A", dist_1d(DistType::block1d(), 64, 4), |p| {
                p.coord(0) as f64
            })
        };
        let t_agg = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let mut a = mk();
        let agg = redistribute(
            &mut a,
            dist_1d(DistType::cyclic1d(1), 64, 4),
            &t_agg,
            &RedistOptions::default(),
        )
        .unwrap();
        let t_elem = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.0));
        let mut b = mk();
        let elem = redistribute(
            &mut b,
            dist_1d(DistType::cyclic1d(1), 64, 4),
            &t_elem,
            &RedistOptions::element_wise(),
        )
        .unwrap();
        assert_eq!(agg.bytes, elem.bytes);
        assert!(elem.messages > agg.messages);
        // With a pure-latency cost model the element-wise strategy is
        // strictly slower — the motivation for aggregation.
        assert!(t_elem.snapshot().critical_time() > t_agg.snapshot().critical_time());
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn domain_mismatch_rejected() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let mut a: DistArray<f64> = DistArray::new("A", dist_1d(DistType::block1d(), 8, 2));
        let err = redistribute(
            &mut a,
            dist_1d(DistType::block1d(), 9, 2),
            &tracker,
            &RedistOptions::default(),
        );
        assert!(matches!(err, Err(RuntimeError::DomainMismatch { .. })));
    }

    #[test]
    fn tracker_too_small_rejected() {
        let tracker = CommTracker::new(2, CostModel::zero());
        let mut a: DistArray<f64> = DistArray::new("A", dist_1d(DistType::block1d(), 8, 2));
        let err = redistribute(
            &mut a,
            dist_1d(DistType::block1d(), 8, 4),
            &tracker,
            &RedistOptions::default(),
        );
        assert!(matches!(err, Err(RuntimeError::TrackerMismatch { .. })));
    }

    #[test]
    fn cached_redistribution_matches_fresh_planning() {
        // The ADI pattern: columns -> rows -> columns -> ... with a shared
        // cache; after the first full cycle every plan is a cache hit and
        // the traffic is identical to fresh planning, iteration for
        // iteration.
        let n = 8usize;
        let mk = |t: DistType| {
            Distribution::new(t, vf_index::IndexDomain::d2(n, n), ProcessorView::linear(4)).unwrap()
        };
        let cache = crate::PlanCache::new();
        let t_cached = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let t_fresh = CommTracker::new(4, CostModel::from_alpha_beta(1.0, 0.5));
        let mut a = DistArray::from_fn("V", mk(DistType::columns()), |p| {
            (p.coord(0) * 100 + p.coord(1)) as f64
        });
        let mut b = a.clone();
        let before = a.to_dense();
        for iter in 0..4 {
            let target = if iter % 2 == 0 {
                DistType::rows()
            } else {
                DistType::columns()
            };
            let rc = redistribute_cached(
                &mut a,
                mk(target.clone()),
                &t_cached,
                &RedistOptions::default(),
                &cache,
            )
            .unwrap();
            let rf = redistribute(&mut b, mk(target), &t_fresh, &RedistOptions::default()).unwrap();
            assert_eq!(rc, rf, "iteration {iter}");
            assert_eq!(a.to_dense(), b.to_dense(), "iteration {iter}");
        }
        assert_eq!(a.to_dense(), before);
        assert_eq!(t_cached.snapshot(), t_fresh.snapshot());
        // Two distinct plans (cols->rows, rows->cols), planned once each.
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn notransfer_skips_the_planner_and_the_cache() {
        let cache = crate::PlanCache::new();
        let tracker = CommTracker::new(2, CostModel::zero());
        let mut a = DistArray::from_fn("A", dist_1d(DistType::block1d(), 8, 2), |p| {
            p.coord(0) as f64
        });
        let report = redistribute_cached(
            &mut a,
            dist_1d(DistType::cyclic1d(1), 8, 2),
            &tracker,
            &RedistOptions::notransfer(),
            &cache,
        )
        .unwrap();
        assert_eq!(report, RedistReport::default());
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(a.dist().dist_type(), &DistType::cyclic1d(1));
    }

    #[test]
    fn gen_block_rebalance_round_trip() {
        // The Figure 2 pattern: BLOCK, then B_BLOCK(BOUNDS), then different
        // BOUNDS again; data must survive every step.
        let tracker = CommTracker::new(4, CostModel::zero());
        let mut a = DistArray::from_fn("FIELD", dist_1d(DistType::block1d(), 20, 4), |p| {
            p.coord(0) * 3
        });
        let before = a.to_dense();
        for sizes in [vec![2, 8, 6, 4], vec![5, 5, 5, 5], vec![0, 0, 10, 10]] {
            redistribute(
                &mut a,
                dist_1d(DistType::gen_block1d(sizes), 20, 4),
                &tracker,
                &RedistOptions::default(),
            )
            .unwrap();
            assert_eq!(a.to_dense(), before);
            a.check_invariants().unwrap();
        }
    }
}
