//! Distributed-memory execution: rank-local shards over real SPMD channels.
//!
//! Every other executor in this crate is a *shared-memory simulation*: all
//! per-processor segments live in one `DistArray` and "communication" is a
//! memcpy through process memory, with traffic charged to the
//! [`CommTracker`]'s cost model.  This module is the distributed-memory
//! backend the model describes: each rank of an [`vf_machine::spmd`]
//! region holds **only its own shard** of every distributed array, and the
//! fused wire buffers of the redistribute / ghost / gather paths are
//! packed, **sent over a real channel** as a framed message
//! ([`vf_machine::WireFrameMsg`]), received, validated and unpacked by the
//! destination rank.
//!
//! Two invariants tie the backend to the rest of the engine:
//!
//! * **Bitwise oracle** — gathering the rank-local shards back into a
//!   `DistArray` produces buffers bit-identical to what the shared-memory
//!   executors compute for the same plan.  The sharded path reuses the
//!   exact pack/unpack run lists of [`FusedPlan`], so this holds by
//!   construction and is pinned by differential tests.
//! * **Model ≡ wire** — the modelled message/byte charges are issued in
//!   the same order and with the same values as the shared wire path
//!   (`charge_directory` → `post_many` → settle with copy credit), while
//!   the *real* channel traffic is counted separately in
//!   [`vf_machine::CommStats::channel_messages`] /
//!   [`vf_machine::CommStats::channel_bytes`].  For a wire-fused exchange
//!   the two byte counts are equal: what the model says crosses the
//!   network is exactly what crossed the channels.
//!
//! Failure degrades instead of aborting: a dead peer, a receive timeout or
//! a truncated payload surfaces as [`RuntimeError::Channel`] from the
//! exchange, after the posted model charges are settled.

use crate::exec::{
    finish_with_copy_credit, wire_checksum, wire_copy_seconds, ExecReport, FusedPlan, PlanExecutor,
    SerialExecutor,
};
use crate::plan::{PlanKind, Transfer};
use crate::{decode_slice, encode_slice, DistArray, Element, Result, RuntimeError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use vf_dist::{Distribution, ProcId};
use vf_machine::spmd::{self, ProcCtx, WIRE_TAG};
use vf_machine::{trace, CommTracker, WireFrameMsg, WorkerPool};

/// A distributed array scattered into rank-private shards.
///
/// Each shard is owned by exactly one rank for the duration of an SPMD
/// region: the rank [`take`](ShardedArray::take)s it on entry and
/// [`put`](ShardedArray::put)s it back before returning, so no rank can
/// read another rank's segment through shared memory — any cross-rank
/// element flow must go over a channel.  The `Mutex<Option<..>>` per shard
/// is the enforcement mechanism, not a synchronisation point: a well-formed
/// region locks each slot exactly twice, uncontended.
#[derive(Debug)]
pub struct ShardedArray<T> {
    name: String,
    dist: Distribution,
    shards: Vec<Mutex<Option<Vec<T>>>>,
}

impl<T: Element> ShardedArray<T> {
    /// Scatters `array` into per-rank shards (one per modelled processor,
    /// cloned from the canonical local segments).
    pub fn scatter(array: &DistArray<T>) -> Self {
        Self {
            name: array.name().to_string(),
            dist: array.dist().clone(),
            shards: array
                .locals()
                .iter()
                .map(|l| Mutex::new(Some(l.clone())))
                .collect(),
        }
    }

    /// The array name the shards were scattered from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The distribution the shards follow.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// Number of shards (one per modelled processor).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Takes rank `rank`'s shard out of the array.  Panics if the shard
    /// was already taken — each rank owns exactly its own shard.
    pub fn take(&self, rank: usize) -> Vec<T> {
        self.shards[rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("shard already taken: each rank must take only its own shard, once")
    }

    /// Returns rank `rank`'s shard after the region's work on it is done.
    pub fn put(&self, rank: usize, shard: Vec<T>) {
        *self.shards[rank]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(shard);
    }

    /// Gathers every shard back into `(distribution, per-rank locals)` —
    /// the verification step that lets callers compare a sharded run
    /// against the shared-memory oracle bit for bit.  Panics if any shard
    /// is still taken.
    pub fn gather(self) -> (Distribution, Vec<Vec<T>>) {
        let locals = self
            .shards
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("shard still taken: the SPMD region must put every shard back")
            })
            .collect();
        (self.dist, locals)
    }

    /// Gathers the shards into `array` (which must model the same number
    /// of processors), making it the canonical global view again.
    pub fn gather_into(self, array: &mut DistArray<T>) {
        let (dist, locals) = self.gather();
        array.replace(dist, locals);
        array.broadcast_canonical();
    }
}

/// The distributed-memory backend handle: where its SPMD regions run and
/// how long a rank waits on a channel before declaring a peer lost.
///
/// As a [`PlanExecutor`] it behaves exactly like [`SerialExecutor`] — the
/// non-channel phases (plain per-part copies, scatter updates) have no
/// wire representation and stay on the shared-memory oracle.  The
/// channel-backed entry points ([`crate::redistribute_sharded`],
/// [`crate::exchange_ghosts_fused_sharded`],
/// [`crate::execute_gather_sharded`]) take the executor explicitly.
#[derive(Debug, Clone)]
pub struct ShardedExecutor {
    pool: Option<Arc<WorkerPool>>,
    timeout: Duration,
}

impl ShardedExecutor {
    /// Default bound on how long a rank blocks in a channel receive before
    /// reporting [`vf_machine::SpmdError::RecvTimeout`].
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// A poolless executor (each exchange spawns its region's rank
    /// threads fresh).  The receive bound can be overridden through the
    /// `VF_CHANNEL_TIMEOUT_MS` environment variable.
    pub fn new() -> Self {
        let timeout = std::env::var("VF_CHANNEL_TIMEOUT_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
            .unwrap_or(Self::DEFAULT_TIMEOUT);
        Self {
            pool: None,
            timeout,
        }
    }

    /// An executor whose SPMD regions run on `pool`'s persistent workers
    /// (falling back to fresh threads when the pool is narrower than the
    /// region — see [`spmd::run_on_pool`]).
    pub fn with_pool(pool: Arc<WorkerPool>) -> Self {
        Self {
            pool: Some(pool),
            ..Self::new()
        }
    }

    /// Overrides the channel receive bound.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The channel receive bound.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The worker pool hosting SPMD regions, if any.
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Runs `body` as an SPMD region of `num_procs` ranks — on the
    /// persistent pool when one is attached, on fresh threads otherwise.
    /// Application workloads use this to keep shards rank-resident across
    /// many time steps (one region for the whole run).
    ///
    /// If the tracker carries a [`vf_machine::FaultInjector`] whose plan
    /// enables [`vf_machine::FaultKind::RankDeath`], the injector is polled
    /// *here*, on the caller thread (honouring the injector's
    /// caller-thread-only determinism contract), and an armed death is
    /// carried into the region as data: after its operation fuse burns
    /// down, the victim rank's channel endpoints drop mid-region and the
    /// survivors surface structured errors instead of hanging.
    pub fn run_region<R, F>(&self, num_procs: usize, tracker: &CommTracker, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut ProcCtx) -> R + Sync,
    {
        let death = tracker
            .fault_injector()
            .and_then(|inj| inj.rank_death(num_procs));
        if death.is_some() {
            tracker.record_fault();
        }
        match &self.pool {
            Some(pool) => spmd::run_on_pool_with_death(pool, num_procs, tracker, death, body),
            None => spmd::run_with_death(num_procs, tracker, death, body),
        }
    }
}

impl Default for ShardedExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanExecutor for ShardedExecutor {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn run_copies<T: Element>(
        &self,
        transfers: &[Transfer],
        src: &[Vec<T>],
        dst_sizes: &[usize],
        tracker: &CommTracker,
    ) -> Vec<Vec<T>> {
        SerialExecutor.run_copies(transfers, src, dst_sizes, tracker)
    }
}

/// One rank's half of a fused wire exchange, run *inside* an SPMD region.
///
/// `my` is the rank's shard of each fused part.  The rank first serves its
/// own local (stay-at-home) runs, then packs and sends one framed wire
/// message per outgoing crossing pair, then receives, validates and
/// unpacks every arriving pair.  Send-before-receive is deadlock-free
/// because the channels are unbounded; the per-tag FIFO pending queue
/// keeps out-of-order arrivals cheap.
///
/// Unlike the shared wire path — which skips receiver-side checksums
/// unless a fault injector is armed, because its "wire" never leaves
/// process memory — the sharded receiver *always* validates the frame:
/// the payload crossed a serialisation boundary, so length, element count
/// and checksum are all checked before any element reaches a destination
/// buffer.
fn rank_exchange<T: Element>(
    fused: &FusedPlan,
    ctx: &mut ProcCtx,
    my: &[&[T]],
    dst_len: &(dyn Fn(usize, usize) -> usize + Sync),
    seq_base: u64,
    timeout: Duration,
) -> Result<Vec<Vec<T>>> {
    let r = ctx.rank();
    let parts = fused.parts();
    let mut bufs: Vec<Vec<T>> = (0..parts.len())
        .map(|idx| vec![T::default(); dst_len(idx, r)])
        .collect();
    // Elements that stay on `r` never touch a channel.
    for (idx, part) in parts.iter().enumerate() {
        if let Some(&ti) = fused.pair_transfer[idx].get(&(r, r)) {
            let t = &part.transfers()[ti];
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                bufs[idx][run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&my[idx][run.src_start..run.src_start + run.len]);
            }
        }
    }
    // Outgoing pairs: pack this rank's crossing payloads and put them on
    // the wire.  `pair_elements` only holds crossing pairs with traffic,
    // so `d != r` and `total > 0` hold structurally.
    for (pi, &((s, d), total)) in fused.pair_elements.iter().enumerate() {
        if s != r {
            continue;
        }
        let pack = trace::OpenSpan::begin_with(trace::Phase::WirePack, || {
            format!("p{r} -> p{d}: {total} elements")
        });
        let mut wire: Vec<T> = vec![T::default(); total];
        for sl in &fused.pair_slices[pi] {
            if sl.elements == 0 {
                continue;
            }
            let t = &parts[sl.part].transfers()[fused.pair_transfer[sl.part][&(s, d)]];
            let mut off = sl.wire_offset;
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                wire[off..off + run.len]
                    .copy_from_slice(&my[sl.part][run.src_start..run.src_start + run.len]);
                off += run.len;
            }
            debug_assert_eq!(off, sl.wire_offset + sl.elements, "slice fills its window");
        }
        let frame = WireFrameMsg {
            seq: seq_base + pi as u64,
            elements: total as u64,
            checksum: wire_checksum(&wire),
        };
        pack.end();
        ctx.send_wire(d, WIRE_TAG, frame, &encode_slice(&wire))?;
    }
    // Arriving pairs, in the same per-destination order the shared wire
    // path unpacks them.  The channel's per-tag queue matches by sender,
    // so arrival order across senders doesn't matter.
    let arriving = fused.pairs_by_dst.get(r).map_or(&[][..], |v| v.as_slice());
    for &pi in arriving {
        let ((s, _), total) = fused.pair_elements[pi];
        let (_, frame, payload) = ctx.recv_wire(Some(s), WIRE_TAG, timeout)?;
        if payload.len() != total * T::BYTES || frame.elements as usize != total {
            return Err(RuntimeError::CorruptMessage {
                src: s,
                dst: r,
                seq: frame.seq,
            });
        }
        let wire: Vec<T> = decode_slice(&payload);
        if wire_checksum(&wire) != frame.checksum {
            return Err(RuntimeError::CorruptMessage {
                src: s,
                dst: r,
                seq: frame.seq,
            });
        }
        let _unpack = trace::OpenSpan::begin_dest(trace::Phase::Unpack, r);
        for sl in &fused.pair_slices[pi] {
            if sl.elements == 0 {
                continue;
            }
            let t = &parts[sl.part].transfers()[fused.pair_transfer[sl.part][&(s, r)]];
            let mut off = sl.wire_offset;
            for run in &t.runs {
                if run.len == 0 {
                    continue;
                }
                bufs[sl.part][run.dst_start..run.dst_start + run.len]
                    .copy_from_slice(&wire[off..off + run.len]);
                off += run.len;
            }
        }
    }
    Ok(bufs)
}

/// The sharded counterpart of [`crate::exec::execute_fused_wire`]: charges
/// the model identically (directory → single-message-per-pair post →
/// settle with the pack/unpack copy credit in `copy_secs`), but moves the
/// data through an SPMD region in which each rank holds only its shards
/// and the wire buffers travel over real channels.
///
/// Returns per-part, per-processor destination buffers and the modelled
/// report; the *channel* traffic lands in the tracker's
/// [`vf_machine::CommStats::channel_messages`] /
/// [`vf_machine::CommStats::channel_bytes`] counters.
///
/// # Errors
/// [`RuntimeError::Channel`] if a rank's send or receive failed (dead
/// peer, timeout, truncation), [`RuntimeError::CorruptMessage`] if a frame
/// failed validation.  The posted charges are settled before any error
/// propagates, and every shard a failing rank took is returned on its
/// error path only if the rank reached its put — callers must treat a
/// failed exchange as fatal for the sharded arrays involved.
pub(crate) fn sharded_fused_exchange<T: Element>(
    fused: &FusedPlan,
    tracker: &CommTracker,
    exec: &ShardedExecutor,
    srcs: &[&ShardedArray<T>],
    dst_len: &(dyn Fn(usize, usize) -> usize + Sync),
    copy_secs: &[f64],
) -> Result<(Vec<Vec<Vec<T>>>, ExecReport)> {
    debug_assert_eq!(
        srcs.len(),
        fused.parts().len(),
        "one sharded array per part"
    );
    for part in fused.parts() {
        part.charge_directory(tracker);
    }
    let batch = fused.message_batch(T::BYTES);
    let messages = batch.len();
    let bytes: usize = batch.iter().map(|m| m.2).sum();
    let post = trace::OpenSpan::begin_with(trace::Phase::Post, || format!("{messages} msgs"));
    let pending = tracker.post_many(batch);
    post.end();
    let seq_base = crate::exec::next_wire_seq_block(fused.pair_elements.len() as u64);
    let procs = tracker.num_procs();
    let timeout = exec.timeout();
    let per_rank: Vec<Result<Vec<Vec<T>>>> = exec.run_region(procs, tracker, |ctx| {
        let r = ctx.rank();
        let my: Vec<Vec<T>> = srcs.iter().map(|sa| sa.take(r)).collect();
        let my_refs: Vec<&[T]> = my.iter().map(|v| v.as_slice()).collect();
        let out = rank_exchange(fused, ctx, &my_refs, dst_len, seq_base, timeout);
        for (sa, shard) in srcs.iter().zip(my) {
            sa.put(r, shard);
        }
        out
    });
    // Settle the posted batch before any `?` — model charges must never
    // leak on a channel-failure path.
    let wait = trace::OpenSpan::begin(trace::Phase::Wait);
    finish_with_copy_credit(tracker, pending, copy_secs);
    wait.end();
    let mut out: Vec<Vec<Vec<T>>> = (0..fused.parts().len())
        .map(|_| vec![Vec::new(); procs])
        .collect();
    for (d, bufs) in per_rank.into_iter().enumerate() {
        for (idx, buf) in bufs?.into_iter().enumerate() {
            out[idx][d] = buf;
        }
    }
    Ok((out, ExecReport { messages, bytes }))
}

/// A reusable rank-level halo exchange for SPMD application loops: the
/// caller builds the fused ghost plan once, enters **one** SPMD region for
/// the whole workload, and calls [`exchange_on_rank`] once per time step
/// from every rank — shards never leave their rank between steps.
///
/// The modelled charges of each step are *not* issued by the ranks (that
/// would charge the batch once per rank): the designated charging rank —
/// conventionally rank 0, between two barriers — calls [`post`] before
/// and [`settle`] after the step's exchanges, reproducing the shared wire
/// path's charge order exactly.
///
/// [`exchange_on_rank`]: ShardedHaloExchange::exchange_on_rank
/// [`post`]: ShardedHaloExchange::post
/// [`settle`]: ShardedHaloExchange::settle
pub struct ShardedHaloExchange {
    fused: FusedPlan,
    timeout: Duration,
}

impl ShardedHaloExchange {
    /// Wraps a fused ghost plan for in-region use.
    ///
    /// # Errors
    /// [`RuntimeError::FusionMismatch`] when `fused` is not a ghost
    /// fusion.
    pub fn new(fused: FusedPlan, timeout: Duration) -> Result<Self> {
        if fused.kind() != PlanKind::Ghost {
            return Err(RuntimeError::FusionMismatch {
                reason: format!(
                    "ShardedHaloExchange needs Ghost parts, got {:?}",
                    fused.kind()
                ),
            });
        }
        Ok(Self { fused, timeout })
    }

    /// The fused plan driving the exchange.
    pub fn fused(&self) -> &FusedPlan {
        &self.fused
    }

    /// Charges one step's modelled traffic (directory + message batch).
    /// Call from exactly one rank per step, before any rank sends.
    pub fn post(&self, tracker: &CommTracker, elem_bytes: usize) -> vf_machine::PendingSends {
        for part in self.fused.parts() {
            part.charge_directory(tracker);
        }
        tracker.post_many(self.fused.message_batch(elem_bytes))
    }

    /// Completes one step's modelled traffic with the wire pack/unpack
    /// copy credit.  Call from the same rank that [`post`]ed, after every
    /// rank's exchange of the step returned.
    ///
    /// [`post`]: ShardedHaloExchange::post
    pub fn settle(
        &self,
        tracker: &CommTracker,
        pending: vf_machine::PendingSends,
        elem_bytes: usize,
    ) {
        finish_with_copy_credit(
            tracker,
            pending,
            &wire_copy_seconds(&self.fused, elem_bytes, tracker),
        );
    }

    /// One rank's halo exchange: `my` is the rank's shard of each fused
    /// array; returns the rank's filled ghost buffer per array (sized by
    /// each part's ghost length for this rank).  Wire sequence numbers are
    /// drawn fresh from the global counter per call, so frames stay
    /// globally identifiable across steps and ranks.
    ///
    /// # Errors
    /// As [`sharded_fused_exchange`]'s rank half: channel failures and
    /// frame validation failures.
    pub fn exchange_on_rank<T: Element>(
        &self,
        ctx: &mut ProcCtx,
        my: &[&[T]],
    ) -> Result<Vec<Vec<T>>> {
        let seq_base = crate::exec::next_wire_seq_block(self.fused.pair_elements.len() as u64);
        rank_exchange(
            &self.fused,
            ctx,
            my,
            &|idx, r| self.fused.parts()[idx].ghost_len(ProcId(r)),
            seq_base,
            self.timeout,
        )
    }

    /// Wraps one rank's exchanged ghost buffer (part `part` of the result
    /// of [`exchange_on_rank`]) as a [`crate::ghost::GhostRegion`] so the
    /// rank can resolve halo reads through the plan's slot index.  Only
    /// `rank`'s slots are populated — exactly the rank-locality the
    /// distributed backend enforces.
    ///
    /// [`exchange_on_rank`]: ShardedHaloExchange::exchange_on_rank
    pub fn ghost_region_on_rank<T: Element>(
        &self,
        part: usize,
        rank: usize,
        buf: Vec<T>,
    ) -> crate::ghost::GhostRegion<T> {
        let plan = &self.fused.parts()[part];
        let mut values = vec![Vec::new(); plan.total_procs()];
        if rank < values.len() {
            values[rank] = buf;
        }
        crate::ghost::GhostRegion::from_parts(Arc::clone(plan), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_redistribute, PlanCache};
    use vf_dist::{DistType, Distribution, ProcessorView};
    use vf_index::{IndexDomain, Point};
    use vf_machine::CostModel;

    fn dist_1d(t: DistType, n: usize, p: usize) -> Distribution {
        Distribution::new(t, IndexDomain::d1(n), ProcessorView::linear(p)).unwrap()
    }

    #[test]
    fn scatter_take_put_gather_round_trip() {
        let dist = dist_1d(DistType::block1d(), 17, 4);
        let data: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let array = DistArray::from_dense("A", dist, &data).unwrap();
        let shards = ShardedArray::scatter(&array);
        assert_eq!(shards.num_shards(), 4);
        assert_eq!(shards.name(), "A");
        let s2 = shards.take(2);
        shards.put(2, s2);
        let mut back = DistArray::new("A", shards.dist().clone());
        shards.gather_into(&mut back);
        assert_eq!(back.to_dense(), data);
    }

    #[test]
    fn sharded_redistribute_matches_shared_oracle() {
        let n = 61;
        let data: Vec<f64> = (0..n).map(|i| (i * i) as f64 * 0.5).collect();
        for procs in [1usize, 3, 4] {
            let from = dist_1d(DistType::block1d(), n, procs);
            let to = dist_1d(DistType::cyclic1d(1), n, procs);

            // Shared-memory oracle.
            let oracle_tracker = CommTracker::new(procs, CostModel::zero());
            let mut oracle = DistArray::from_dense("A", from.clone(), &data).unwrap();
            let fused =
                FusedPlan::fuse(vec![Arc::new(plan_redistribute(&from, &to).unwrap())]).unwrap();
            let (oracle_reports, oracle_exec) = crate::exec::execute_redistribute_fused_wire(
                &mut [&mut oracle],
                &fused,
                &oracle_tracker,
                &SerialExecutor,
            )
            .unwrap();

            // Sharded run over real channels.
            let tracker = CommTracker::new(procs, CostModel::zero());
            let mut array = DistArray::from_dense("A", from.clone(), &data).unwrap();
            let exec = ShardedExecutor::new();
            let (reports, exec_report) =
                crate::redistribute_impl::execute_redistribute_fused_sharded(
                    &mut [&mut array],
                    &fused,
                    &tracker,
                    &exec,
                )
                .unwrap();

            assert_eq!(array.to_dense(), oracle.to_dense(), "{procs} procs");
            assert_eq!(reports, oracle_reports);
            assert_eq!(exec_report, oracle_exec);

            // Modelled charges identical to the oracle; channel traffic
            // identical to the modelled wire traffic.
            let shared = oracle_tracker.snapshot();
            let stats = tracker.snapshot();
            assert_eq!(stats.total_messages(), shared.total_messages());
            assert_eq!(stats.total_bytes(), shared.total_bytes());
            assert_eq!(stats.channel_messages(), exec_report.messages);
            assert_eq!(stats.channel_bytes(), exec_report.bytes);
            assert_eq!(
                shared.channel_messages(),
                0,
                "oracle never touches a channel"
            );
        }
    }

    #[test]
    fn sharded_ghost_exchange_matches_shared_oracle() {
        let n = 40;
        let procs = 4;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let dist = dist_1d(DistType::block1d(), n, procs);

        let oracle_tracker = CommTracker::new(procs, CostModel::zero());
        let oracle_arr = DistArray::from_dense("G", dist.clone(), &data).unwrap();
        let cache = PlanCache::new();
        let (oracle_regions, oracle_exec) = crate::ghost::exchange_ghosts_fused_wire_with(
            &[&oracle_arr],
            &[(1, 1)],
            &oracle_tracker,
            &cache,
            &SerialExecutor,
        )
        .unwrap();

        let tracker = CommTracker::new(procs, CostModel::zero());
        let arr = DistArray::from_dense("G", dist, &data).unwrap();
        let cache2 = PlanCache::new();
        let exec = ShardedExecutor::new();
        let (regions, exec_report) = crate::ghost::exchange_ghosts_fused_sharded(
            &[&arr],
            &[(1, 1)],
            &tracker,
            &cache2,
            &exec,
        )
        .unwrap();

        assert_eq!(exec_report, oracle_exec);
        for p in 0..procs {
            assert_eq!(regions[0].len(ProcId(p)), oracle_regions[0].len(ProcId(p)));
            for i in 0..n {
                let pt = Point::d1(i as i64);
                assert_eq!(
                    regions[0].get(ProcId(p), &pt),
                    oracle_regions[0].get(ProcId(p), &pt),
                    "ghost mismatch at proc {p} index {i}"
                );
            }
        }
        let stats = tracker.snapshot();
        let shared = oracle_tracker.snapshot();
        assert_eq!(stats.total_messages(), shared.total_messages());
        assert_eq!(stats.total_bytes(), shared.total_bytes());
        assert_eq!(stats.channel_messages(), exec_report.messages);
        assert_eq!(stats.channel_bytes(), exec_report.bytes);
    }

    #[test]
    fn sharded_executor_defaults() {
        let exec = ShardedExecutor::new();
        assert_eq!(exec.name(), "sharded");
        assert!(exec.pool().is_none());
        assert!(exec.timeout() > Duration::ZERO);
        let tuned = exec.with_timeout(Duration::from_millis(5));
        assert_eq!(tuned.timeout(), Duration::from_millis(5));
    }

    #[test]
    fn dead_rank_region_returns_within_twice_the_timeout() {
        use vf_machine::{FaultInjector, FaultKind, FaultPlan, SpmdError};
        let timeout = Duration::from_millis(500);
        let plan = FaultPlan::new(9)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::RankDeath])
            .with_max_faults(1);
        let tracker = CommTracker::new(4, CostModel::zero())
            .with_fault_injector(Arc::new(FaultInjector::new(plan)));
        let exec = ShardedExecutor::new().with_timeout(timeout);
        let start = std::time::Instant::now();
        // Enough checked barriers that the victim's fuse (< 8 channel ops)
        // always burns down mid-region.
        let results: Vec<std::result::Result<(), SpmdError>> =
            exec.run_region(4, &tracker, |ctx| {
                for _ in 0..10 {
                    ctx.barrier_checked(timeout)?;
                }
                Ok(())
            });
        let elapsed = start.elapsed();
        assert!(
            elapsed < timeout * 2,
            "region with a dead rank took {elapsed:?} against a {timeout:?} receive bound"
        );
        let killed = results
            .iter()
            .filter(|r| matches!(r, Err(SpmdError::RankKilled { .. })))
            .count();
        assert_eq!(killed, 1, "exactly one rank dies: {results:?}");
        assert!(
            results.iter().all(|r| r.is_err()),
            "no rank silently completes a broken region: {results:?}"
        );
    }
}
