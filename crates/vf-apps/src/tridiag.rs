//! Constant-coefficient tridiagonal solves (the `TRIDIAG` routine of
//! Figure 1).
//!
//! The ADI sweeps solve, along every grid line, a tridiagonal system
//! `a·x[i-1] + b·x[i] + c·x[i+1] = d[i]` with constant coefficients.  The
//! solver is the sequential Thomas algorithm: the paper's `TRIDIAG` "is
//! given a right hand side and overwrites it with the solution of a
//! constant coefficient tridiagonal system".

/// The constant coefficients of the tridiagonal operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TridiagCoeffs {
    /// Sub-diagonal coefficient.
    pub a: f64,
    /// Diagonal coefficient.
    pub b: f64,
    /// Super-diagonal coefficient.
    pub c: f64,
}

impl TridiagCoeffs {
    /// The classic diffusion-like operator `(-1, 2+eps, -1)` used by the ADI
    /// experiments; `eps > 0` keeps it strictly diagonally dominant.
    pub fn diffusion(eps: f64) -> Self {
        Self {
            a: -1.0,
            b: 2.0 + eps,
            c: -1.0,
        }
    }
}

/// Number of floating-point operations of one Thomas solve of length `n`
/// (used for compute-cost accounting: ~8 flops per unknown).
pub fn tridiag_flops(n: usize) -> usize {
    8 * n
}

/// Solves the constant-coefficient tridiagonal system in place: on entry
/// `rhs` holds the right-hand side, on exit the solution — exactly the
/// contract of the paper's `TRIDIAG`.
///
/// # Panics
/// Panics if the system is singular (zero pivot), which cannot happen for
/// strictly diagonally dominant coefficients such as
/// [`TridiagCoeffs::diffusion`].
pub fn solve_in_place(coeffs: TridiagCoeffs, rhs: &mut [f64]) {
    let n = rhs.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        rhs[0] /= coeffs.b;
        return;
    }
    // Thomas algorithm with a scratch vector for the modified
    // super-diagonal.
    let mut c_prime = vec![0.0; n];
    let mut denom = coeffs.b;
    assert!(denom != 0.0, "singular tridiagonal system");
    c_prime[0] = coeffs.c / denom;
    rhs[0] /= denom;
    for i in 1..n {
        denom = coeffs.b - coeffs.a * c_prime[i - 1];
        assert!(denom != 0.0, "singular tridiagonal system");
        c_prime[i] = coeffs.c / denom;
        rhs[i] = (rhs[i] - coeffs.a * rhs[i - 1]) / denom;
    }
    for i in (0..n - 1).rev() {
        rhs[i] -= c_prime[i] * rhs[i + 1];
    }
}

/// Computes the residual `max_i |a·x[i-1] + b·x[i] + c·x[i+1] - d[i]|` of a
/// candidate solution against the original right-hand side.
pub fn residual(coeffs: TridiagCoeffs, solution: &[f64], rhs: &[f64]) -> f64 {
    let n = solution.len();
    let mut worst: f64 = 0.0;
    for i in 0..n {
        let left = if i > 0 { solution[i - 1] } else { 0.0 };
        let right = if i + 1 < n { solution[i + 1] } else { 0.0 };
        let lhs = coeffs.a * left + coeffs.b * solution[i] + coeffs.c * right;
        worst = worst.max((lhs - rhs[i]).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_small_system_exactly() {
        // b=2 on the diagonal, zero off-diagonals: solution is rhs / 2.
        let coeffs = TridiagCoeffs {
            a: 0.0,
            b: 2.0,
            c: 0.0,
        };
        let mut rhs = vec![2.0, 4.0, 6.0];
        solve_in_place(coeffs, &mut rhs);
        assert_eq!(rhs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn diffusion_system_has_small_residual() {
        let coeffs = TridiagCoeffs::diffusion(0.05);
        let original: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut x = original.clone();
        solve_in_place(coeffs, &mut x);
        assert!(residual(coeffs, &x, &original) < 1e-9);
    }

    #[test]
    fn degenerate_lengths() {
        let coeffs = TridiagCoeffs::diffusion(0.1);
        let mut empty: Vec<f64> = vec![];
        solve_in_place(coeffs, &mut empty);
        assert!(empty.is_empty());
        let mut single = vec![4.2];
        solve_in_place(coeffs, &mut single);
        assert!((single[0] - 4.2 / 2.1).abs() < 1e-12);
        assert!(tridiag_flops(10) > 0);
    }

    proptest! {
        #[test]
        fn prop_solution_satisfies_system(values in proptest::collection::vec(-100.0f64..100.0, 2..80)) {
            let coeffs = TridiagCoeffs::diffusion(0.5);
            let mut x = values.clone();
            solve_in_place(coeffs, &mut x);
            prop_assert!(residual(coeffs, &x, &values) < 1e-6);
        }
    }
}
