//! The particle-in-cell (PIC) simulation of Figure 2: dynamic load
//! balancing with general block distributions.
//!
//! The domain is divided into `NCELL` cells; each cell owns the particles
//! currently inside it, and the per-cell work is proportional to the number
//! of particles there.  As particles drift across the domain the work per
//! processor changes, so the code of Figure 2 recomputes a `BOUNDS` array
//! from the particle counts every tenth iteration (when `rebalance()` says
//! so) and executes `DISTRIBUTE FIELD :: B_BLOCK(BOUNDS)`.
//!
//! The field array here is one value per cell (`FIELD(NCELL)`), standing in
//! for the paper's `FIELD(NCELL, NPART, ...)`; the particle lists are kept
//! per cell, owned by the processor owning the cell, and particle motion
//! between cells on different processors is charged through the
//! inspector/executor-style aggregation the paper prescribes for it.

use crate::workloads::{particles_per_cell, Particle};
use std::collections::HashMap;
use vf_dist::{DistType, Distribution, ProcId, ProcessorView};
use vf_index::{IndexDomain, Point};
use vf_machine::{trace, CommStats, Machine};
use vf_runtime::{redistribute_cached_with, DistArray, ExecBackend, PlanCache, RedistOptions};

/// Flops charged per particle per phase (field contribution + position
/// update).
const FLOPS_PER_PARTICLE: usize = 20;
/// Wire size of one particle (position + velocity).
const PARTICLE_BYTES: usize = 16;

/// The load-balancing strategy of a PIC run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PicStrategy {
    /// `BLOCK` cells throughout — the Figure 2 code *without* the
    /// rebalancing branch.
    StaticBlock,
    /// Figure 2 as written: every `period` steps, if the imbalance exceeds
    /// `threshold`, recompute `BOUNDS` and redistribute.
    DynamicGenBlock {
        /// Rebalancing check period in steps (10 in the paper).
        period: usize,
        /// Rebalance when max/avg particles per processor exceeds this.
        threshold: f64,
    },
    /// Rebalance every step regardless of imbalance — an upper bound on the
    /// achievable balance (and on redistribution cost).
    Oracle,
}

/// Configuration of a PIC run.
#[derive(Debug, Clone)]
pub struct PicConfig {
    /// Number of cells.
    pub ncell: usize,
    /// Number of simulation steps.
    pub steps: usize,
    /// Load-balancing strategy.
    pub strategy: PicStrategy,
}

/// Per-step measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PicStepStats {
    /// Step index.
    pub step: usize,
    /// Load imbalance before any rebalancing this step (max/avg particles
    /// per processor).
    pub imbalance: f64,
    /// Particles owned by the most loaded processor.
    pub max_particles: usize,
    /// Whether a rebalancing redistribution was performed this step.
    pub rebalanced: bool,
    /// Particles that crossed processors due to their own motion this step.
    pub migrated_particles: usize,
}

/// Result of a PIC run.
#[derive(Debug, Clone)]
pub struct PicResult {
    /// Accumulated machine statistics.
    pub stats: CommStats,
    /// Per-step measurements.
    pub per_step: Vec<PicStepStats>,
    /// Total number of particles at the end (must equal the initial count).
    pub total_particles: usize,
    /// Number of rebalancing redistributions performed.
    pub rebalance_count: usize,
    /// Bytes moved by rebalancing (field elements + particle lists).
    pub rebalance_bytes: usize,
    /// Mean over steps of the pre-rebalancing imbalance.
    pub mean_imbalance: f64,
    /// Maximum over steps of the pre-rebalancing imbalance.
    pub max_imbalance: f64,
}

/// The `balance` routine of Figure 2: computes per-processor block sizes
/// (the `BOUNDS` array) so that each processor receives contiguous cells
/// with approximately equal particle counts.
#[allow(clippy::needless_range_loop)] // `p` drives target arithmetic, not just indexing
pub fn balance(counts: &[usize], nprocs: usize) -> Vec<usize> {
    let ncell = counts.len();
    let total: usize = counts.iter().sum();
    let mut sizes = vec![0usize; nprocs];
    let mut cell = 0usize;
    let mut assigned = 0usize;
    for p in 0..nprocs {
        let remaining_procs = nprocs - p;
        // Target: an equal share of the remaining particles, while leaving
        // at least one cell for each remaining processor (when possible).
        let target = (total - assigned) as f64 / remaining_procs as f64;
        let mut here = 0usize;
        let mut taken = 0usize;
        while cell < ncell {
            let cells_left_after = ncell - cell - 1;
            if cells_left_after < remaining_procs - 1 {
                // Must stop so later processors can still get cells.
                break;
            }
            if p + 1 < nprocs && taken > 0 && here as f64 >= target {
                break;
            }
            here += counts[cell];
            taken += 1;
            cell += 1;
        }
        sizes[p] = taken;
        assigned += here;
    }
    // Any remaining cells go to the last processor.
    sizes[nprocs - 1] += ncell - cell;
    debug_assert_eq!(sizes.iter().sum::<usize>(), ncell);
    sizes
}

/// The `rebalance()` predicate of Figure 2: imbalance above a threshold.
pub fn needs_rebalance(imbalance: f64, threshold: f64) -> bool {
    imbalance > threshold
}

fn cell_distribution(ncell: usize, machine: &Machine, sizes: Option<Vec<usize>>) -> Distribution {
    let procs = ProcessorView::linear(machine.num_procs());
    let dist_type = match sizes {
        Some(s) => DistType::gen_block1d(s),
        None => DistType::block1d(),
    };
    Distribution::new(dist_type, IndexDomain::d1(ncell), procs)
        .expect("cell distributions are valid")
}

fn owner_of_cell(dist: &Distribution, cell: usize) -> ProcId {
    dist.owner(&Point::d1(cell as i64 + 1))
        .expect("cell within domain")
}

fn particles_per_proc(counts: &[usize], dist: &Distribution, nprocs: usize) -> Vec<usize> {
    let mut per_proc = vec![0usize; nprocs];
    for (cell, &c) in counts.iter().enumerate() {
        per_proc[owner_of_cell(dist, cell).0] += c;
    }
    per_proc
}

fn imbalance_of(per_proc: &[usize]) -> f64 {
    let total: usize = per_proc.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / per_proc.len() as f64;
    per_proc.iter().copied().max().unwrap_or(0) as f64 / avg
}

/// Runs the PIC simulation and returns statistics.  `initial_particles` is
/// consumed and evolved in place.
pub fn run(config: &PicConfig, machine: &Machine, initial_particles: &[Particle]) -> PicResult {
    let tracker = machine.tracker();
    // Shared plan cache: the per-step cell-halo exchange always hits after
    // the first step under an unchanged distribution, and recurring
    // BOUNDS partitions reuse their redistribution schedules.  Rebalance
    // copies run on the auto-selected (threaded when multi-core) backend.
    let plans = PlanCache::new();
    let executor = ExecBackend::auto();
    let nprocs = machine.num_procs();
    let ncell = config.ncell;
    let mut particles: Vec<Particle> = initial_particles.to_vec();

    // FIELD(NCELL): one force value per cell.
    let mut field: DistArray<f64> =
        DistArray::new("FIELD", cell_distribution(ncell, machine, None));

    // Initial partition of cells (Figure 2 computes BOUNDS right after the
    // initial positions are known, for the dynamic strategies).
    if !matches!(config.strategy, PicStrategy::StaticBlock) {
        let counts = particles_per_cell(&particles, ncell);
        let sizes = balance(&counts, nprocs);
        redistribute_cached_with(
            &mut field,
            cell_distribution(ncell, machine, Some(sizes)),
            &tracker,
            &RedistOptions::default(),
            &plans,
            &executor,
        )
        .expect("same domain");
    }

    let mut per_step = Vec::with_capacity(config.steps);
    let mut rebalance_count = 0usize;
    let mut rebalance_bytes = 0usize;

    for step in 0..config.steps {
        let _step_span = trace::OpenSpan::begin_with(trace::Phase::Step, || format!("step {step}"));
        let counts = particles_per_cell(&particles, ncell);
        let per_proc = particles_per_proc(&counts, field.dist(), nprocs);
        let imbalance = imbalance_of(&per_proc);
        let max_particles = per_proc.iter().copied().max().unwrap_or(0);

        // Rebalancing decision (before the step's work, mirroring the
        // "every 10th iteration" check of Figure 2).
        let rebalanced = match config.strategy {
            PicStrategy::StaticBlock => false,
            PicStrategy::Oracle => true,
            PicStrategy::DynamicGenBlock { period, threshold } => {
                step % period == period - 1 && needs_rebalance(imbalance, threshold)
            }
        };
        if rebalanced {
            let sizes = balance(&counts, nprocs);
            let old_dist = field.dist().clone();
            let new_dist = cell_distribution(ncell, machine, Some(sizes));
            let report = redistribute_cached_with(
                &mut field,
                new_dist.clone(),
                &tracker,
                &RedistOptions::default(),
                &plans,
                &executor,
            )
            .expect("same domain");
            rebalance_count += 1;
            rebalance_bytes += report.bytes;
            // Particles follow their cells: those whose cell changed owner
            // are shipped as well (aggregated per processor pair).
            let mut pair_particles: HashMap<(usize, usize), usize> = HashMap::new();
            for (cell, &c) in counts.iter().enumerate() {
                let from = owner_of_cell(&old_dist, cell);
                let to = owner_of_cell(&new_dist, cell);
                if from != to && c > 0 {
                    *pair_particles.entry((from.0, to.0)).or_insert(0) += c;
                }
            }
            for (&(src, dst), &count) in &pair_particles {
                let bytes = count * PARTICLE_BYTES;
                tracker.send(src, dst, bytes);
                rebalance_bytes += bytes;
            }
        }

        // Phase 1: update_field — each cell owner accumulates the charge of
        // its particles and the field value of the cell.
        let counts_now = particles_per_cell(&particles, ncell);
        for (cell, &c) in counts_now.iter().enumerate() {
            let owner = owner_of_cell(field.dist(), cell);
            tracker.compute(owner.0, c * FLOPS_PER_PARTICLE);
            field
                .set(&Point::d1(cell as i64 + 1), c as f64)
                .expect("cell within domain");
        }
        // Neighbouring-cell field values are needed for the force on each
        // particle: post the 1-wide cell halo split-phase and let it stream
        // while phase 2 pushes particles (which reads only the particle
        // lists and the distribution, never the in-flight halo values).
        let halo = vf_runtime::ghost::exchange_ghosts_fused_wire_split(
            &[&field],
            &[(1, 1)],
            &tracker,
            &plans,
            &executor,
        )
        .expect("block and general block cells have contiguous segments");

        // Phase 2: update_part — move particles; those that cross to a cell
        // owned by another processor must be communicated (irregular,
        // aggregated per processor pair as the inspector/executor would).
        let push_span = trace::OpenSpan::begin_with(trace::Phase::InteriorCompute, || {
            format!("push {} particles", particles.len())
        });
        let mut migrated = 0usize;
        let mut pair_particles: HashMap<(usize, usize), usize> = HashMap::new();
        for particle in &mut particles {
            let old_cell = particle.cell(ncell);
            let owner_before = owner_of_cell(field.dist(), old_cell);
            tracker.compute(owner_before.0, FLOPS_PER_PARTICLE);
            // Reflecting boundaries keep every particle inside the domain.
            let mut pos = particle.pos + particle.vel;
            if pos < 0.0 {
                pos = -pos;
                particle.vel = -particle.vel;
            }
            let limit = ncell as f64 - 1e-9;
            if pos > limit {
                pos = 2.0 * limit - pos;
                particle.vel = -particle.vel;
            }
            particle.pos = pos.clamp(0.0, limit);
            let new_cell = particle.cell(ncell);
            let owner_after = owner_of_cell(field.dist(), new_cell);
            if owner_before != owner_after {
                migrated += 1;
                *pair_particles
                    .entry((owner_before.0, owner_after.0))
                    .or_insert(0) += 1;
            }
        }
        push_span.end();
        for (&(src, dst), &count) in &pair_particles {
            tracker.send(src, dst, count * PARTICLE_BYTES);
        }
        // Complete the halo posted before the push — the whole particle
        // phase ran in its shadow.
        halo.wait(&tracker)
            .expect("split-phase halo exchange survives injected faults");

        per_step.push(PicStepStats {
            step,
            imbalance,
            max_particles,
            rebalanced,
            migrated_particles: migrated,
        });
    }

    let mean_imbalance =
        per_step.iter().map(|s| s.imbalance).sum::<f64>() / per_step.len().max(1) as f64;
    let max_imbalance = per_step.iter().map(|s| s.imbalance).fold(1.0f64, f64::max);
    PicResult {
        stats: tracker.snapshot(),
        per_step,
        total_particles: particles.len(),
        rebalance_count,
        rebalance_bytes,
        mean_imbalance,
        max_imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{particles, ParticleLayout};
    use vf_machine::CostModel;

    fn clustered(ncell: usize, count: usize) -> Vec<Particle> {
        particles(
            ncell,
            count,
            ParticleLayout::Cluster {
                center: 0.2,
                width: 0.06,
            },
            0.4,
            13,
        )
    }

    #[test]
    fn balance_produces_even_particle_shares() {
        let counts = vec![10, 0, 0, 0, 10, 10, 10, 0, 0, 40];
        let sizes = balance(&counts, 4);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s > 0));
        // Shares per processor under the computed bounds.
        let mut shares = vec![0usize; 4];
        let mut cell = 0;
        for (p, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                shares[p] += counts[cell];
                cell += 1;
            }
        }
        let max = *shares.iter().max().unwrap() as f64;
        let avg = 80.0 / 4.0;
        assert!(max / avg <= 2.01, "shares {shares:?} too uneven");
    }

    #[test]
    fn balance_handles_degenerate_inputs() {
        // All particles in one cell: that cell's processor carries them all,
        // but every processor still gets at least the remaining empty cells.
        let mut counts = vec![0usize; 8];
        counts[0] = 100;
        let sizes = balance(&counts, 4);
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        // No particles at all.
        let sizes = balance(&[0usize; 8], 4);
        assert_eq!(sizes.iter().sum::<usize>(), 8);
    }

    #[test]
    fn particles_are_conserved_under_every_strategy() {
        let ncell = 64;
        let init = clustered(ncell, 800);
        for strategy in [
            PicStrategy::StaticBlock,
            PicStrategy::DynamicGenBlock {
                period: 5,
                threshold: 1.2,
            },
            PicStrategy::Oracle,
        ] {
            let machine = Machine::new(4, CostModel::zero());
            let result = run(
                &PicConfig {
                    ncell,
                    steps: 12,
                    strategy,
                },
                &machine,
                &init,
            );
            assert_eq!(result.total_particles, 800, "{strategy:?} lost particles");
            assert_eq!(result.per_step.len(), 12);
        }
    }

    #[test]
    fn dynamic_rebalancing_reduces_imbalance() {
        let ncell = 128;
        let init = clustered(ncell, 2000);
        let run_strategy = |strategy| {
            // A cost model with a non-zero per-flop cost so that the
            // modelled compute imbalance is observable.
            let machine = Machine::new(8, CostModel::modern_cluster());
            run(
                &PicConfig {
                    ncell,
                    steps: 30,
                    strategy,
                },
                &machine,
                &init,
            )
        };
        let static_block = run_strategy(PicStrategy::StaticBlock);
        let dynamic = run_strategy(PicStrategy::DynamicGenBlock {
            period: 10,
            threshold: 1.1,
        });
        assert_eq!(static_block.rebalance_count, 0);
        assert!(dynamic.rebalance_count >= 1);
        assert!(
            dynamic.mean_imbalance < static_block.mean_imbalance,
            "dynamic {:.2} should be more balanced than static {:.2}",
            dynamic.mean_imbalance,
            static_block.mean_imbalance
        );
        // Better balance shows up as lower modelled compute imbalance too.
        assert!(dynamic.stats.load_imbalance() < static_block.stats.load_imbalance());
    }

    #[test]
    fn oracle_rebalancing_is_at_least_as_balanced_as_periodic() {
        let ncell = 96;
        let init = clustered(ncell, 1500);
        let run_strategy = |strategy| {
            let machine = Machine::new(6, CostModel::zero());
            run(
                &PicConfig {
                    ncell,
                    steps: 20,
                    strategy,
                },
                &machine,
                &init,
            )
        };
        let periodic = run_strategy(PicStrategy::DynamicGenBlock {
            period: 10,
            threshold: 1.1,
        });
        let oracle = run_strategy(PicStrategy::Oracle);
        assert!(oracle.rebalance_count >= periodic.rebalance_count);
        assert!(oracle.mean_imbalance <= periodic.mean_imbalance + 1e-9);
        // ...but it pays for it with more redistribution traffic.
        assert!(oracle.rebalance_bytes >= periodic.rebalance_bytes);
    }

    #[test]
    fn rebalance_predicate_thresholds() {
        assert!(needs_rebalance(1.5, 1.2));
        assert!(!needs_rebalance(1.1, 1.2));
    }
}
