//! Application kernels from the paper's §4, built on the Vienna Fortran
//! dynamic-distribution library.
//!
//! The paper motivates dynamic data distributions with three scenarios and
//! two program figures; each has a full implementation here so that the
//! experiment harness (crate `vf-bench`) can reproduce the corresponding
//! comparisons:
//!
//! * [`smoothing`] — the grid-smoothing example of §4: a 5-point relaxation
//!   whose best distribution (column `( : , BLOCK)` versus 2-D
//!   `(BLOCK, BLOCK)`) depends on the ratio `N/p` and the machine's message
//!   cost parameters; includes the runtime distribution chooser the paper
//!   proposes (select the distribution when the grid size is an input).
//! * [`adi`] — the ADI (Alternating Direction Implicit) iteration of
//!   Figure 1: tridiagonal solves along x-lines and then y-lines, run with
//!   a static distribution (communication inside one of the two sweeps) or
//!   with dynamic redistribution between the sweeps (all communication
//!   confined to the `DISTRIBUTE`), plus the two-copy array-assignment
//!   baseline discussed in the text.
//! * [`pic`] — the particle-in-cell simulation of Figure 2: cells
//!   distributed `BLOCK` or general-block (`B_BLOCK(BOUNDS)`), particles
//!   drifting across cells, periodic load-balance checks and
//!   redistribution.
//! * [`mesh`] — an unstructured-mesh edge sweep over `INDIRECT`
//!   (mapping-array) distributions: CSR mesh with shuffled node ids,
//!   coordinate and greedy partitioners producing the mapping arrays,
//!   cached PARTI gather schedules over the cut edges, and mid-run
//!   repartitioning through a fused connect-class `DISTRIBUTE` — the
//!   irregular scenario the paper's dynamic distributions target.
//! * [`tridiag`] — the constant-coefficient tridiagonal (Thomas) solver the
//!   ADI code calls (`TRIDIAG` in Figure 1).
//! * [`workloads`] — deterministic workload generators (particle clouds,
//!   initial fields) used by tests, examples and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adi;
pub mod mesh;
pub mod pic;
pub mod smoothing;
pub mod tridiag;
pub mod workloads;
