//! The grid-smoothing example of §4: choosing a distribution from runtime
//! values.
//!
//! "In a grid based computation, such as smoothing, the value at a grid
//! point is based on its 4 nearest neighbors.  A column distribution of the
//! N × N grid will give rise to 2 messages per processor, each of size N,
//! per computation step.  On the other hand, if the grid is distributed by
//! blocks in two dimensions across a p² processor array, then each
//! computation step requires 4 messages of size N/p each on each processor.
//! Thus, given the startup overhead and cost per byte of each message of
//! the target machine, the ratio N/p will determine the most appropriate
//! distribution."  (paper §4)
//!
//! This module implements the smoothing step under both layouts, the
//! analytic per-step cost model quoted above, and the runtime chooser that
//! a Vienna Fortran program would express with `DISTRIBUTE` inside an `IF`.

use std::sync::Mutex;

use vf_dist::{DistType, Distribution, ProcId, ProcessorView};
use vf_index::{IndexDomain, Point};
use vf_machine::{trace, CommStats, CostModel, Machine, PendingSends};
use vf_runtime::ghost::{
    exchange_ghosts_cached_with, exchange_ghosts_fused_wire_split, get_with_ghosts, GhostRegion,
};
use vf_runtime::{
    CheckpointStore, DistArray, ExecBackend, FusedPlan, PlanCache, RuntimeError, SerialExecutor,
    ShardedArray, ShardedExecutor, ShardedHaloExchange,
};

/// The two candidate layouts of the N×N grid discussed in §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmoothingLayout {
    /// `( : , BLOCK)`: whole columns per processor — 2 neighbour messages of
    /// N elements per processor and step.
    Columns,
    /// `(BLOCK, BLOCK)` on a (roughly) square processor grid — 4 neighbour
    /// messages of about N/√p elements per processor and step.
    Blocks2D,
}

impl SmoothingLayout {
    /// The Vienna Fortran distribution type of the layout.
    pub fn dist_type(self) -> DistType {
        match self {
            SmoothingLayout::Columns => DistType::columns(),
            SmoothingLayout::Blocks2D => DistType::blocks2d(),
        }
    }
}

/// Configuration of a smoothing run.
#[derive(Debug, Clone)]
pub struct SmoothingConfig {
    /// Grid size N (the grid is N×N).
    pub n: usize,
    /// Number of relaxation steps.
    pub steps: usize,
    /// Grid layout.
    pub layout: SmoothingLayout,
}

/// Result of a smoothing run.
#[derive(Debug, Clone)]
pub struct SmoothingResult {
    /// Communication/computation statistics of the whole run.
    pub stats: CommStats,
    /// Messages exchanged in one step (from the first step).
    pub messages_per_step: usize,
    /// Bytes exchanged in one step (from the first step).
    pub bytes_per_step: usize,
    /// Sum of the final field (for cross-checking against the sequential
    /// reference).
    pub checksum: f64,
    /// The final field in dense column-major order.
    pub field: Vec<f64>,
}

/// Flops charged per updated grid point (4 adds + 1 multiply).
const FLOPS_PER_POINT: usize = 5;

/// One Jacobi relaxation step on a dense column-major grid — the sequential
/// reference the distributed runs are validated against.
pub fn sequential_step(n: usize, field: &[f64]) -> Vec<f64> {
    let idx = |i: usize, j: usize| i + j * n;
    let mut out = field.to_vec();
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            out[idx(i, j)] = 0.25
                * (field[idx(i - 1, j)]
                    + field[idx(i + 1, j)]
                    + field[idx(i, j - 1)]
                    + field[idx(i, j + 1)]);
        }
    }
    out
}

/// Runs `steps` sequential reference steps.
pub fn sequential_reference(n: usize, steps: usize, initial: &[f64]) -> Vec<f64> {
    let mut field = initial.to_vec();
    for _ in 0..steps {
        field = sequential_step(n, &field);
    }
    field
}

/// The analytic per-step communication time of one processor under the
/// paper's message-count argument.
pub fn predicted_step_time(layout: SmoothingLayout, n: usize, p: usize, cost: &CostModel) -> f64 {
    let elem = 8.0; // f64
    match layout {
        SmoothingLayout::Columns => 2.0 * (cost.alpha + cost.beta * elem * n as f64),
        SmoothingLayout::Blocks2D => {
            let side = (p as f64).sqrt().max(1.0);
            4.0 * (cost.alpha + cost.beta * elem * (n as f64 / side))
        }
    }
}

/// The runtime distribution chooser of §4: picks the layout with the lower
/// predicted per-step communication time given N, the number of processors
/// (`$NP`) and the machine's α/β parameters.
pub fn choose_layout(n: usize, p: usize, cost: &CostModel) -> SmoothingLayout {
    if predicted_step_time(SmoothingLayout::Columns, n, p, cost)
        <= predicted_step_time(SmoothingLayout::Blocks2D, n, p, cost)
    {
        SmoothingLayout::Columns
    } else {
        SmoothingLayout::Blocks2D
    }
}

/// Builds the distribution of the grid for a layout on `machine`.
pub fn grid_distribution(layout: SmoothingLayout, n: usize, machine: &Machine) -> Distribution {
    let procs = ProcessorView::linear(machine.num_procs());
    Distribution::new(layout.dist_type(), IndexDomain::d2(n, n), procs)
        .expect("square grid distributions are always valid")
}

/// One Jacobi relaxation step of one field: reads `src` (and its exchanged
/// 1-wide ghosts), writes `dst`, and charges the interior FLOPs — the
/// kernel shared by [`run`] and [`run_class`], so fused and independent
/// runs stay bit-identical by construction.
fn relax_field(
    dist: &Distribution,
    n: i64,
    src: &DistArray<f64>,
    ghosts: &vf_runtime::ghost::GhostRegion<f64>,
    dst: &mut DistArray<f64>,
    tracker: &vf_machine::CommTracker,
) {
    for &p in dist.proc_ids().to_vec().iter() {
        let points = dist.local_points(p);
        let mut interior = 0usize;
        for (l, point) in points.into_iter().enumerate() {
            let (i, j) = (point.coord(0), point.coord(1));
            let value = if i == 1 || i == n || j == 1 || j == n {
                src.get(&point).expect("point in domain")
            } else {
                interior += 1;
                let read = |q: Point| {
                    get_with_ghosts(src, ghosts, p, &q).expect("neighbour within 1-wide halo")
                };
                0.25 * (read(point.offset(0, -1))
                    + read(point.offset(0, 1))
                    + read(point.offset(1, -1))
                    + read(point.offset(1, 1)))
            };
            dst.local_mut(p)[l] = value;
        }
        tracker.compute(p.0, interior * FLOPS_PER_POINT);
    }
}

/// Which points a split-phase relaxation pass updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelaxPass {
    /// Points whose whole stencil is on-processor (plus the global
    /// boundary copy-through) — computable while the halo is in flight.
    Interior,
    /// Points with at least one off-processor neighbour — these wait for
    /// the halo.
    Boundary,
}

/// One split-phase Jacobi pass: updates only the points selected by
/// `pass`, reading off-processor neighbours from `ghosts` (only the
/// boundary pass touches them) and accumulating per-processor
/// updated-point counts into `counts` instead of charging FLOPs — the
/// caller charges each processor **once** after both passes, so the
/// modelled compute time is bit-identical to the single-pass
/// [`relax_field`] kernel.
fn relax_field_pass(
    dist: &Distribution,
    n: i64,
    src: &DistArray<f64>,
    ghosts: Option<&GhostRegion<f64>>,
    dst: &mut DistArray<f64>,
    pass: RelaxPass,
    counts: &mut [usize],
) {
    let locator = dist.locator();
    for &p in dist.proc_ids().to_vec().iter() {
        let points = dist.local_points(p);
        for (l, point) in points.into_iter().enumerate() {
            let (i, j) = (point.coord(0), point.coord(1));
            if i == 1 || i == n || j == 1 || j == n {
                // Global boundary: copy-through, no neighbour reads —
                // always safe in the interior pass.
                if pass == RelaxPass::Interior {
                    dst.local_mut(p)[l] = src.get(&point).expect("point in domain");
                }
                continue;
            }
            let neighbours = [
                point.offset(0, -1),
                point.offset(0, 1),
                point.offset(1, -1),
                point.offset(1, 1),
            ];
            let local = neighbours.iter().all(|q| {
                locator
                    .locate(q)
                    .map(|(owner, _)| owner == p)
                    .unwrap_or(false)
            });
            let wanted = if local {
                RelaxPass::Interior
            } else {
                RelaxPass::Boundary
            };
            if wanted != pass {
                continue;
            }
            counts[p.0] += 1;
            let value = if local {
                let read = |q: &Point| {
                    let (_, off) = locator.locate(q).expect("neighbour in domain");
                    src.local(p)[off]
                };
                0.25 * (read(&neighbours[0])
                    + read(&neighbours[1])
                    + read(&neighbours[2])
                    + read(&neighbours[3]))
            } else {
                let ghosts = ghosts.expect("boundary pass runs after the halo has landed");
                let read = |q: &Point| {
                    get_with_ghosts(src, ghosts, p, q).expect("neighbour within 1-wide halo")
                };
                0.25 * (read(&neighbours[0])
                    + read(&neighbours[1])
                    + read(&neighbours[2])
                    + read(&neighbours[3]))
            };
            dst.local_mut(p)[l] = value;
        }
    }
}

/// Runs the distributed smoothing kernel and returns statistics plus the
/// final field.
pub fn run(config: &SmoothingConfig, machine: &Machine, initial: &[f64]) -> SmoothingResult {
    let tracker = machine.tracker();
    // The halo geometry is identical in every step: plan it once and
    // replay the cached exchange schedule afterwards, copying on the
    // auto-selected (threaded when multi-core) backend.
    let plans = PlanCache::new();
    let executor = ExecBackend::auto();
    let dist = grid_distribution(config.layout, config.n, machine);
    let domain = dist.domain().clone();
    let mut current =
        DistArray::from_dense("U", dist.clone(), initial).expect("initial field has N*N elements");
    let mut next: DistArray<f64> = DistArray::new("V", dist.clone());

    let n = config.n as i64;
    let mut messages_per_step = 0;
    let mut bytes_per_step = 0;

    for step in 0..config.steps {
        let _step_span = trace::OpenSpan::begin_with(trace::Phase::Step, || format!("step {step}"));
        let (ghosts, report) =
            exchange_ghosts_cached_with(&current, &[(1, 1), (1, 1)], &tracker, &plans, &executor)
                .expect("block layouts");
        if step == 0 {
            messages_per_step = report.messages;
            bytes_per_step = report.bytes;
        }
        let relax_span =
            trace::OpenSpan::begin_static(trace::Phase::InteriorCompute, "relax-field");
        relax_field(&dist, n, &current, &ghosts, &mut next, &tracker);
        relax_span.end();
        std::mem::swap(&mut current, &mut next);
    }

    let field = current.to_dense();
    let checksum = field.iter().sum();
    let _ = domain;
    SmoothingResult {
        stats: tracker.snapshot(),
        messages_per_step,
        bytes_per_step,
        checksum,
        field,
    }
}

/// Runs the smoothing kernel on the **distributed-memory backend**: the
/// field is scattered into rank-local shards once, every rank then loops
/// over all time steps inside a *single* SPMD region — exchanging its
/// 1-wide halo over real [`vf_machine::spmd`] channels each step and
/// relaxing only its own shard — and the shards are gathered back into a
/// global array only after the last step.  No rank ever reads another
/// rank's shard directly; off-shard neighbours come exclusively from the
/// wire-exchanged ghost buffer.  The gathered field is bitwise identical
/// to [`run`]'s, and the tracker's `channel_*` counters record the real
/// per-step wire traffic alongside the modelled costs.
pub fn run_sharded(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
) -> SmoothingResult {
    let tracker = machine.tracker();
    let plans = PlanCache::new();
    let executor = ShardedExecutor::new();
    let dist = grid_distribution(config.layout, config.n, machine);
    let widths = [(1, 1), (1, 1)];
    let mut current =
        DistArray::from_dense("U", dist.clone(), initial).expect("initial field has N*N elements");

    // Identical halo geometry in every step: one plan, fused once, reused
    // by every rank for the whole run.
    let plan = plans.ghost_plan(&dist, &widths).expect("block layouts");
    let fused = FusedPlan::fuse(vec![plan]).expect("a single ghost part always fuses");
    let halo = ShardedHaloExchange::new(fused, executor.timeout())
        .expect("ghost plans build halo exchanges");
    let messages_per_step = halo.fused().num_messages();
    let bytes_per_step = halo.fused().bytes_for(8);

    let shards = ShardedArray::scatter(&current);
    let procs = machine.num_procs();
    let n = config.n as i64;
    let steps = config.steps;
    let locator = dist.locator();
    // Rank 0 charges the modelled step traffic between barriers so the
    // post → copies → settle order matches the shared-memory executors.
    let pending_slot: Mutex<Option<PendingSends>> = Mutex::new(None);

    executor.run_region(procs, &tracker, |ctx| {
        let r = ctx.rank();
        let me = ProcId(r);
        let points = dist.local_points(me);
        let mut my = shards.take(r);
        let mut next = vec![0.0f64; my.len()];
        for step in 0..steps {
            ctx.barrier();
            let step_span = (r == 0).then(|| {
                trace::OpenSpan::begin_with(trace::Phase::Step, || format!("sharded step {step}"))
            });
            if r == 0 {
                *pending_slot.lock().expect("pending slot") = Some(halo.post(&tracker, 8));
            }
            ctx.barrier();
            let bufs = halo
                .exchange_on_rank(ctx, &[&my])
                .expect("sharded halo exchange over channels");
            let ghosts =
                halo.ghost_region_on_rank(0, r, bufs.into_iter().next().expect("one part"));
            let relax_span = trace::OpenSpan::begin_dest(trace::Phase::InteriorCompute, r);
            let mut interior = 0usize;
            for (l, point) in points.iter().enumerate() {
                let (i, j) = (point.coord(0), point.coord(1));
                next[l] = if i == 1 || i == n || j == 1 || j == n {
                    my[l]
                } else {
                    interior += 1;
                    let read = |q: Point| {
                        let (owner, off) = locator.locate(&q).expect("neighbour in domain");
                        if owner == me {
                            my[off]
                        } else {
                            ghosts.get(me, &q).expect("neighbour within 1-wide halo")
                        }
                    };
                    0.25 * (read(point.offset(0, -1))
                        + read(point.offset(0, 1))
                        + read(point.offset(1, -1))
                        + read(point.offset(1, 1)))
                };
            }
            ctx.charge_compute(interior * FLOPS_PER_POINT);
            relax_span.end();
            ctx.barrier();
            if r == 0 {
                let pending = pending_slot
                    .lock()
                    .expect("pending slot")
                    .take()
                    .expect("posted this step");
                halo.settle(&tracker, pending, 8);
            }
            if let Some(span) = step_span {
                span.end();
            }
            std::mem::swap(&mut my, &mut next);
        }
        shards.put(r, my);
    });

    shards.gather_into(&mut current);
    let field = current.to_dense();
    let checksum = field.iter().sum();
    SmoothingResult {
        stats: tracker.snapshot(),
        messages_per_step,
        bytes_per_step,
        checksum,
        field,
    }
}

/// Outcome of [`recover_and_resume`]: the completed run plus how many
/// crashed regions were recovered by restoring a checkpoint.
#[derive(Debug, Clone)]
pub struct RecoveredSmoothing {
    /// The completed run — bitwise identical to an uninterrupted one.
    pub result: SmoothingResult,
    /// Region failures that were recovered by restoring the last good
    /// checkpoint generation (or restarting from the initial field when
    /// no checkpoint had been written yet).
    pub restarts: usize,
}

/// Runs the sharded smoothing kernel with a checkpoint of the field every
/// `ckpt_every` steps: the run is split into fallible SPMD segments, and
/// after each segment the gathered field is saved into `store`
/// (write-new + atomic rename, two rotating generations).  The final field
/// is bitwise identical to [`run_sharded`]'s.
///
/// # Errors
/// [`RuntimeError::Channel`] when a rank dies (or a channel times out)
/// mid-segment — the region degrades with a structured error instead of
/// hanging; drive [`recover_and_resume`] to restart from the last
/// checkpoint.  Checkpoint I/O failures surface as
/// [`RuntimeError::CorruptCheckpoint`].
pub fn run_sharded_checkpointed(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
    store: &CheckpointStore,
    ckpt_every: usize,
) -> vf_runtime::Result<SmoothingResult> {
    let tracker = machine.tracker();
    run_checkpointed_attempt(
        config,
        machine,
        initial,
        store,
        ckpt_every,
        &tracker,
        &ShardedExecutor::new(),
        false,
    )
}

/// [`run_sharded_checkpointed`] with an explicit executor (to bound the
/// channel timeout in crash tests).
pub fn run_sharded_checkpointed_with(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
    store: &CheckpointStore,
    ckpt_every: usize,
    executor: &ShardedExecutor,
) -> vf_runtime::Result<SmoothingResult> {
    let tracker = machine.tracker();
    run_checkpointed_attempt(
        config, machine, initial, store, ckpt_every, &tracker, executor, false,
    )
}

/// The crash-recovery driver: runs [`run_sharded_checkpointed`] and, when
/// a segment fails with a channel error (injected rank death, peer loss,
/// receive timeout), restores the newest checkpoint generation — falling
/// back to the initial field when none was written — and resumes from the
/// checkpointed step.  At most `max_restarts` recoveries are attempted.
///
/// One tracker (and therefore one fault-injection schedule) spans all
/// attempts, so a bounded fault budget ([`vf_machine::FaultPlan`]
/// `max_faults`) is honoured across the restarts.
///
/// # Errors
/// The final channel error when the restart budget is exhausted, or any
/// non-channel error immediately.
pub fn recover_and_resume(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
    store: &CheckpointStore,
    ckpt_every: usize,
    max_restarts: usize,
) -> vf_runtime::Result<RecoveredSmoothing> {
    recover_and_resume_with(
        config,
        machine,
        initial,
        store,
        ckpt_every,
        max_restarts,
        &ShardedExecutor::new(),
    )
}

/// [`recover_and_resume`] with an explicit executor (to bound the channel
/// timeout in crash tests).
pub fn recover_and_resume_with(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
    store: &CheckpointStore,
    ckpt_every: usize,
    max_restarts: usize,
    executor: &ShardedExecutor,
) -> vf_runtime::Result<RecoveredSmoothing> {
    let tracker = machine.tracker();
    let mut restarts = 0usize;
    loop {
        let attempt = run_checkpointed_attempt(
            config,
            machine,
            initial,
            store,
            ckpt_every,
            &tracker,
            executor,
            restarts > 0,
        );
        match attempt {
            Ok(result) => return Ok(RecoveredSmoothing { result, restarts }),
            Err(e @ RuntimeError::Channel(_)) => {
                if restarts >= max_restarts {
                    return Err(e);
                }
                restarts += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One attempt of the checkpointed run: resolves the starting state
/// (initial field, or the newest checkpoint when `resume` is set), then
/// alternates fallible SPMD segments with checkpoint saves on a stable
/// cadence (every `ckpt_every` steps from step 0, so restarts rejoin the
/// same checkpoint schedule).
#[allow(clippy::too_many_arguments)]
fn run_checkpointed_attempt(
    config: &SmoothingConfig,
    machine: &Machine,
    initial: &[f64],
    store: &CheckpointStore,
    ckpt_every: usize,
    tracker: &vf_machine::CommTracker,
    executor: &ShardedExecutor,
    resume: bool,
) -> vf_runtime::Result<SmoothingResult> {
    assert!(ckpt_every > 0, "checkpoint cadence must be positive");
    let plans = PlanCache::new();
    let dist = grid_distribution(config.layout, config.n, machine);
    let widths = [(1, 1), (1, 1)];

    let from_initial = || {
        DistArray::from_dense("U", dist.clone(), initial).expect("initial field has N*N elements")
    };
    let (mut current, start_step) = if resume {
        // Redistribute-on-read: a checkpoint written under any distribution
        // restores into the live grid distribution.  An empty (or fully
        // corrupt) store means the crash predated the first save — restart
        // from the initial field.
        match store.restore_into::<f64, _>(&dist, tracker, &plans, &SerialExecutor) {
            Ok(r) => {
                let step = (r.step as usize).min(config.steps);
                (r.array, step)
            }
            Err(RuntimeError::CorruptCheckpoint { .. }) => (from_initial(), 0),
            Err(e) => return Err(e),
        }
    } else {
        (from_initial(), 0)
    };

    let plan = plans.ghost_plan(&dist, &widths).expect("block layouts");
    let fused = FusedPlan::fuse(vec![plan]).expect("a single ghost part always fuses");
    let halo = ShardedHaloExchange::new(fused, executor.timeout())
        .expect("ghost plans build halo exchanges");
    let messages_per_step = halo.fused().num_messages();
    let bytes_per_step = halo.fused().bytes_for(8);
    let n = config.n as i64;

    let mut done = start_step;
    while done < config.steps {
        let seg_end = config.steps.min((done / ckpt_every + 1) * ckpt_every);
        run_fallible_segment(
            &dist,
            &halo,
            executor,
            tracker,
            &mut current,
            done,
            seg_end,
            n,
        )?;
        store.save(&current, seg_end as u64, tracker)?;
        done = seg_end;
    }

    let field = current.to_dense();
    let checksum = field.iter().sum();
    Ok(SmoothingResult {
        stats: tracker.snapshot(),
        messages_per_step,
        bytes_per_step,
        checksum,
        field,
    })
}

/// Runs steps `start..end` of the sharded relaxation as **one fallible
/// SPMD region**: every barrier is deadline-checked and every channel
/// error propagates as a structured region failure instead of a hang or a
/// panic.  On success the shards are gathered back into `current`; on
/// failure `current` is left at its pre-segment state (the damaged shards
/// — the victim's is lost with its context — are discarded wholesale) and
/// any step charges rank 0 posted but could not settle are settled so the
/// tracker stays balanced.
#[allow(clippy::too_many_arguments)]
fn run_fallible_segment(
    dist: &Distribution,
    halo: &ShardedHaloExchange,
    executor: &ShardedExecutor,
    tracker: &vf_machine::CommTracker,
    current: &mut DistArray<f64>,
    start: usize,
    end: usize,
    n: i64,
) -> vf_runtime::Result<()> {
    let locator = dist.locator();
    let timeout = executor.timeout();
    let shards = ShardedArray::scatter(current);
    let procs = tracker.num_procs();
    let pending_slot: Mutex<Option<PendingSends>> = Mutex::new(None);

    let results: Vec<vf_runtime::Result<()>> = executor.run_region(procs, tracker, |ctx| {
        let r = ctx.rank();
        let me = ProcId(r);
        let points = dist.local_points(me);
        let mut my = shards.take(r);
        let mut next = vec![0.0f64; my.len()];
        for step in start..end {
            ctx.barrier_checked(timeout)?;
            let step_span = (r == 0).then(|| {
                trace::OpenSpan::begin_with(trace::Phase::Step, || {
                    format!("ckpt-sharded step {step}")
                })
            });
            if r == 0 {
                *pending_slot.lock().expect("pending slot") = Some(halo.post(tracker, 8));
            }
            ctx.barrier_checked(timeout)?;
            let bufs = halo.exchange_on_rank(ctx, &[&my])?;
            let ghosts =
                halo.ghost_region_on_rank(0, r, bufs.into_iter().next().expect("one part"));
            let relax_span = trace::OpenSpan::begin_dest(trace::Phase::InteriorCompute, r);
            let mut interior = 0usize;
            for (l, point) in points.iter().enumerate() {
                let (i, j) = (point.coord(0), point.coord(1));
                next[l] = if i == 1 || i == n || j == 1 || j == n {
                    my[l]
                } else {
                    interior += 1;
                    let read = |q: Point| {
                        let (owner, off) = locator.locate(&q).expect("neighbour in domain");
                        if owner == me {
                            my[off]
                        } else {
                            ghosts.get(me, &q).expect("neighbour within 1-wide halo")
                        }
                    };
                    0.25 * (read(point.offset(0, -1))
                        + read(point.offset(0, 1))
                        + read(point.offset(1, -1))
                        + read(point.offset(1, 1)))
                };
            }
            ctx.charge_compute(interior * FLOPS_PER_POINT);
            relax_span.end();
            ctx.barrier_checked(timeout)?;
            if r == 0 {
                let pending = pending_slot
                    .lock()
                    .expect("pending slot")
                    .take()
                    .expect("posted this step");
                halo.settle(tracker, pending, 8);
            }
            if let Some(span) = step_span {
                span.end();
            }
            std::mem::swap(&mut my, &mut next);
        }
        shards.put(r, my);
        Ok(())
    });

    if let Some(err) = results.into_iter().find_map(|r| r.err()) {
        if let Some(pending) = pending_slot.lock().expect("pending slot").take() {
            halo.settle(tracker, pending, 8);
        }
        return Err(err);
    }
    shards.gather_into(current);
    Ok(())
}

/// Result of a class (multi-field) smoothing run whose halos are exchanged
/// as **one fused ghost exchange** per step.
#[derive(Debug, Clone)]
pub struct ClassSmoothingResult {
    /// Communication/computation statistics of the whole run.
    pub stats: CommStats,
    /// Fused messages exchanged in one step — one per communicating
    /// processor pair for the whole class.
    pub messages_per_step: usize,
    /// What one step *would* charge exchanging each field separately
    /// (fields × per-field pair count) — the fusion saving.
    pub unfused_messages_per_step: usize,
    /// Bytes exchanged in one step (all fields together; exactly the sum
    /// of the per-field halo volumes).
    pub bytes_per_step: usize,
    /// Final fields in dense column-major order, one per input field.
    pub fields: Vec<Vec<f64>>,
}

/// Runs the smoothing kernel on a *class* of fields sharing one grid
/// distribution — a connect class of stencil arrays — exchanging every
/// step's halos as a single fused ghost exchange: one message per
/// communicating processor pair carries all fields' boundary faces
/// (per-pair slot remapping keeps each field's ghost slots intact), where
/// per-field exchange would charge one message per field per pair.  Each
/// field's values are bit-identical to an independent [`run`] of that
/// field.
pub fn run_class(
    config: &SmoothingConfig,
    machine: &Machine,
    initials: &[Vec<f64>],
) -> ClassSmoothingResult {
    assert!(!initials.is_empty(), "a class needs at least one field");
    let tracker = machine.tracker();
    let plans = PlanCache::new();
    let executor = ExecBackend::auto();
    let dist = grid_distribution(config.layout, config.n, machine);
    let widths = [(1, 1), (1, 1)];
    let mut current: Vec<DistArray<f64>> = initials
        .iter()
        .enumerate()
        .map(|(k, field)| {
            DistArray::from_dense(format!("U{k}"), dist.clone(), field)
                .expect("initial field has N*N elements")
        })
        .collect();
    let mut next: Vec<DistArray<f64>> = (0..initials.len())
        .map(|k| DistArray::new(format!("V{k}"), dist.clone()))
        .collect();
    let unfused_messages_per_step = initials.len()
        * plans
            .ghost_plan(&dist, &widths)
            .expect("block layouts")
            .num_messages();

    let n = config.n as i64;
    let mut messages_per_step = 0;
    let mut bytes_per_step = 0;
    for step in 0..config.steps {
        let _step_span = trace::OpenSpan::begin_with(trace::Phase::Step, || format!("step {step}"));
        let refs: Vec<&DistArray<f64>> = current.iter().collect();
        // Split-phase wire exchange: each pair's message is packed and
        // posted up front, then the interior points of every field (whole
        // stencil on-processor) are relaxed *while the halo is still in
        // flight*; the boundary points run after the wait against ghost
        // regions bitwise identical to the blocking exchange.
        let split = exchange_ghosts_fused_wire_split(&refs, &widths, &tracker, &plans, &executor)
            .expect("block layouts");
        if step == 0 {
            messages_per_step = split.messages();
            bytes_per_step = split.bytes();
        }
        let mut counts: Vec<Vec<usize>> = vec![vec![0; tracker.num_procs()]; current.len()];
        let interior_span = trace::OpenSpan::begin_with(trace::Phase::InteriorCompute, || {
            format!("interior {} fields", current.len())
        });
        for ((src, dst), field_counts) in current.iter().zip(next.iter_mut()).zip(&mut counts) {
            relax_field_pass(&dist, n, src, None, dst, RelaxPass::Interior, field_counts);
        }
        interior_span.end();
        let (regions, _split_report) = split
            .wait(&tracker)
            .expect("split-phase ghost exchange survives injected faults");
        for (field, ((src, dst), field_counts)) in current
            .iter()
            .zip(next.iter_mut())
            .zip(&mut counts)
            .enumerate()
        {
            relax_field_pass(
                &dist,
                n,
                src,
                Some(&regions[field]),
                dst,
                RelaxPass::Boundary,
                field_counts,
            );
            // One FLOP charge per (field, processor), exactly like the
            // single-pass kernel.
            for (p, &points) in field_counts.iter().enumerate() {
                tracker.compute(p, points * FLOPS_PER_POINT);
            }
        }
        std::mem::swap(&mut current, &mut next);
    }

    ClassSmoothingResult {
        stats: tracker.snapshot(),
        messages_per_step,
        unfused_messages_per_step,
        bytes_per_step,
        fields: current.iter().map(|a| a.to_dense()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn distributed_matches_sequential_for_both_layouts() {
        let n = 12;
        let initial = workloads::initial_grid(n, 7);
        let reference = sequential_reference(n, 3, &initial);
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(4, CostModel::zero());
            let result = run(
                &SmoothingConfig {
                    n,
                    steps: 3,
                    layout,
                },
                &machine,
                &initial,
            );
            for (a, b) in result.field.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-12, "{layout:?} diverges from reference");
            }
        }
    }

    #[test]
    fn class_fused_smoothing_matches_independent_runs_bitwise() {
        let n = 12;
        let steps = 3;
        let k = 3usize;
        let initials: Vec<Vec<f64>> = (0..k)
            .map(|seed| workloads::initial_grid(n, seed as u64 + 1))
            .collect();
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(4, CostModel::from_alpha_beta(1.0, 0.5));
            let class = run_class(&SmoothingConfig { n, steps, layout }, &machine, &initials);
            assert_eq!(class.fields.len(), k);
            // One fused message per communicating pair, vs one per field
            // per pair unfused; bytes are the full k-field volume.
            assert_eq!(class.unfused_messages_per_step, k * class.messages_per_step);
            let mut single_bytes = 0usize;
            for (field, initial) in initials.iter().enumerate() {
                let machine = Machine::new(4, CostModel::from_alpha_beta(1.0, 0.5));
                let single = run(&SmoothingConfig { n, steps, layout }, &machine, initial);
                assert_eq!(
                    class.fields[field], single.field,
                    "{layout:?} field {field} diverges from its independent run"
                );
                assert_eq!(single.messages_per_step, class.messages_per_step);
                single_bytes += single.bytes_per_step;
            }
            assert_eq!(class.bytes_per_step, single_bytes);
            // The tracker saw the fused counts: k fields cost the same
            // message count per step as one.
            assert_eq!(
                class.stats.total_messages(),
                steps * class.messages_per_step
            );
        }
    }

    #[test]
    fn sharded_run_matches_shared_run_bitwise_with_real_channel_traffic() {
        let n = 16;
        let steps = 3;
        let initial = workloads::initial_grid(n, 11);
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(4, CostModel::zero());
            let shared = run(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            let machine = Machine::new(4, CostModel::zero());
            let sharded = run_sharded(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            // The gathered rank-local result is bitwise the shared-memory
            // result, and both runs model identical traffic.
            assert_eq!(
                sharded.field, shared.field,
                "{layout:?} gathered field diverges from the shared-memory run"
            );
            assert_eq!(sharded.checksum, shared.checksum);
            assert_eq!(sharded.messages_per_step, shared.messages_per_step);
            assert_eq!(sharded.bytes_per_step, shared.bytes_per_step);
            assert_eq!(
                sharded.stats.total_messages(),
                shared.stats.total_messages(),
                "{layout:?} modelled message counts diverge"
            );
            assert_eq!(sharded.stats.total_bytes(), shared.stats.total_bytes());
            // Only the sharded run moved real bytes over channels — and
            // exactly as many as the model claims, every step.
            assert_eq!(shared.stats.channel_messages(), 0);
            assert_eq!(
                sharded.stats.channel_messages(),
                steps * sharded.messages_per_step
            );
            assert_eq!(
                sharded.stats.channel_bytes(),
                steps * sharded.bytes_per_step
            );
        }
    }

    fn ckpt_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("vf_smooth_ckpt_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir)
    }

    #[test]
    fn checkpointed_run_matches_uninterrupted_run_bitwise() {
        let n = 16;
        let steps = 5;
        let initial = workloads::initial_grid(n, 11);
        for layout in [SmoothingLayout::Columns, SmoothingLayout::Blocks2D] {
            let machine = Machine::new(4, CostModel::zero());
            let plain = run_sharded(&SmoothingConfig { n, steps, layout }, &machine, &initial);
            let store = ckpt_store(match layout {
                SmoothingLayout::Columns => "cols",
                SmoothingLayout::Blocks2D => "blk",
            });
            let machine = Machine::new(4, CostModel::zero());
            let ckpt = run_sharded_checkpointed(
                &SmoothingConfig { n, steps, layout },
                &machine,
                &initial,
                &store,
                2,
            )
            .expect("fault-free checkpointed run succeeds");
            assert_eq!(
                ckpt.field, plain.field,
                "{layout:?} checkpointed field diverges from the plain sharded run"
            );
            assert_eq!(ckpt.messages_per_step, plain.messages_per_step);
            assert_eq!(ckpt.bytes_per_step, plain.bytes_per_step);
            // The last checkpoint holds the final step, and its I/O was
            // charged to the tracker.
            assert_eq!(store.latest_step(), Some(steps as u64));
            assert!(ckpt.stats.ckpt_bytes_written() > 0);
            assert_eq!(ckpt.stats.ckpt_bytes_read(), 0);
        }
    }

    #[test]
    fn rank_death_recovers_from_checkpoint_bitwise() {
        use vf_machine::{FaultKind, FaultPlan};
        let n = 16;
        let steps = 6;
        let layout = SmoothingLayout::Columns;
        let initial = workloads::initial_grid(n, 23);
        let machine = Machine::new(4, CostModel::zero());
        let clean = run_sharded(&SmoothingConfig { n, steps, layout }, &machine, &initial);

        // One guaranteed rank death, then a clean rest of the schedule.
        let plan = FaultPlan::new(77)
            .with_rate(1.0)
            .with_kinds(&[FaultKind::RankDeath])
            .with_max_faults(1);
        let machine = Machine::new(4, CostModel::zero()).with_fault_plan(plan);
        let store = ckpt_store("recover");
        let executor = ShardedExecutor::new().with_timeout(std::time::Duration::from_millis(500));
        let recovered = recover_and_resume_with(
            &SmoothingConfig { n, steps, layout },
            &machine,
            &initial,
            &store,
            2,
            3,
            &executor,
        )
        .expect("the driver recovers from a single injected rank death");
        assert_eq!(recovered.restarts, 1, "exactly one region crashed");
        assert_eq!(
            recovered.result.field, clean.field,
            "recovered field diverges from the fault-free run"
        );
        assert_eq!(recovered.result.checksum, clean.checksum);
    }

    #[test]
    fn message_counts_follow_the_paper_analysis() {
        let n = 32;
        let p = 4;
        let initial = workloads::initial_grid(n, 3);
        let machine = Machine::new(p, CostModel::zero());
        let cols = run(
            &SmoothingConfig {
                n,
                steps: 1,
                layout: SmoothingLayout::Columns,
            },
            &machine,
            &initial,
        );
        // Column layout: interior processors receive 2 faces of N, edge
        // processors 1 → 2(p-1) messages in total, N elements each.
        assert_eq!(cols.messages_per_step, 2 * (p - 1));
        assert_eq!(cols.bytes_per_step, 2 * (p - 1) * n * 8);

        let machine = Machine::new(p, CostModel::zero());
        let blocks = run(
            &SmoothingConfig {
                n,
                steps: 1,
                layout: SmoothingLayout::Blocks2D,
            },
            &machine,
            &initial,
        );
        // 2x2 processor grid: each processor has 2 face neighbours and 1
        // corner neighbour → 12 messages; faces carry N/2 elements.
        assert_eq!(blocks.messages_per_step, 12);
        // More messages but fewer bytes per message than the column layout.
        assert!(blocks.messages_per_step > cols.messages_per_step);
    }

    #[test]
    fn chooser_follows_alpha_beta_tradeoff() {
        // Latency-bound machine: fewer messages win → columns.
        let latency = CostModel::latency_bound();
        assert_eq!(choose_layout(256, 16, &latency), SmoothingLayout::Columns);
        // Bandwidth-bound machine with many processors: smaller messages win.
        let bandwidth = CostModel::bandwidth_bound();
        assert_eq!(
            choose_layout(4096, 64, &bandwidth),
            SmoothingLayout::Blocks2D
        );
        // The predicted cost is what the chooser minimises.
        let n = 1024;
        let p = 16;
        let chosen = choose_layout(n, p, &bandwidth);
        let other = match chosen {
            SmoothingLayout::Columns => SmoothingLayout::Blocks2D,
            SmoothingLayout::Blocks2D => SmoothingLayout::Columns,
        };
        assert!(
            predicted_step_time(chosen, n, p, &bandwidth)
                <= predicted_step_time(other, n, p, &bandwidth)
        );
    }

    #[test]
    fn modelled_time_tracks_prediction_direction() {
        // On a latency-bound machine the measured (modelled) critical time
        // of the column layout must beat the 2-D layout, matching the
        // analytic prediction.
        let n = 64;
        let p = 16;
        let initial = workloads::initial_grid(n, 1);
        let cost = CostModel::latency_bound();
        let run_one = |layout| {
            let machine = Machine::new(p, cost.clone());
            run(
                &SmoothingConfig {
                    n,
                    steps: 2,
                    layout,
                },
                &machine,
                &initial,
            )
            .stats
            .critical_time()
        };
        assert!(run_one(SmoothingLayout::Columns) < run_one(SmoothingLayout::Blocks2D));
    }
}
