//! Deterministic workload generators for the experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A column-major N×N initial field with reproducible pseudo-random interior
/// values and zero boundary, suitable for the smoothing and ADI kernels.
pub fn initial_grid(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut field = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            let boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
            field[i + j * n] = if boundary {
                0.0
            } else {
                rng.gen_range(-1.0..1.0)
            };
        }
    }
    field
}

/// How the initial particle positions of the PIC workload are laid out over
/// the 1-D cell domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParticleLayout {
    /// Uniform over all cells — a balanced start.
    Uniform,
    /// A Gaussian cluster centred at `center` (fraction of the domain) with
    /// standard deviation `width` (fraction of the domain) — the
    /// load-imbalanced start that motivates general block distributions.
    Cluster {
        /// Centre of the cluster as a fraction of the domain `[0, 1)`.
        center: f64,
        /// Standard deviation as a fraction of the domain.
        width: f64,
    },
}

/// One simulated particle: a position in cell coordinates `[0, ncell)` and a
/// velocity in cells per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position in cell coordinates.
    pub pos: f64,
    /// Velocity in cells per time step.
    pub vel: f64,
}

impl Particle {
    /// The (0-based) cell index the particle currently belongs to.
    pub fn cell(&self, ncell: usize) -> usize {
        (self.pos.floor() as usize).min(ncell - 1)
    }
}

/// Generates `count` particles over `ncell` cells with the given layout and
/// a common drift velocity (plus a small random thermal component).
pub fn particles(
    ncell: usize,
    count: usize,
    layout: ParticleLayout,
    drift: f64,
    seed: u64,
) -> Vec<Particle> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let pos = match layout {
            ParticleLayout::Uniform => rng.gen_range(0.0..ncell as f64),
            ParticleLayout::Cluster { center, width } => {
                // Box-Muller style sample, clamped into the domain.
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (center * ncell as f64 + gauss * width * ncell as f64)
                    .clamp(0.0, ncell as f64 - 1e-9)
            }
        };
        let vel = drift + rng.gen_range(-0.1..0.1);
        out.push(Particle { pos, vel });
    }
    out
}

/// Counts the particles in every cell.
pub fn particles_per_cell(particles: &[Particle], ncell: usize) -> Vec<usize> {
    let mut counts = vec![0usize; ncell];
    for p in particles {
        counts[p.cell(ncell)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deterministic_with_zero_boundary() {
        let a = initial_grid(8, 42);
        let b = initial_grid(8, 42);
        let c = initial_grid(8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for i in 0..8 {
            assert_eq!(a[i], 0.0); // first column
            assert_eq!(a[i * 8], 0.0); // first row
        }
        assert!(a.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn uniform_particles_cover_the_domain() {
        let ps = particles(64, 1000, ParticleLayout::Uniform, 0.0, 1);
        assert_eq!(ps.len(), 1000);
        let counts = particles_per_cell(&ps, 64);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        assert!(occupied > 48, "uniform layout should touch most cells");
    }

    #[test]
    fn clustered_particles_concentrate() {
        let ps = particles(
            100,
            2000,
            ParticleLayout::Cluster {
                center: 0.25,
                width: 0.05,
            },
            0.0,
            7,
        );
        let counts = particles_per_cell(&ps, 100);
        let near: usize = counts[15..35].iter().sum();
        assert!(
            near > 1500,
            "most particles should sit near the cluster centre, got {near}"
        );
        // All particles stay inside the domain.
        assert!(ps.iter().all(|p| p.pos >= 0.0 && p.pos < 100.0));
        assert!(ps.iter().all(|p| p.cell(100) < 100));
    }

    #[test]
    fn drift_shifts_velocities() {
        let ps = particles(32, 500, ParticleLayout::Uniform, 0.5, 3);
        let mean_vel: f64 = ps.iter().map(|p| p.vel).sum::<f64>() / ps.len() as f64;
        assert!((mean_vel - 0.5).abs() < 0.05);
    }
}
