//! The ADI (Alternating Direction Implicit) iteration of Figure 1.
//!
//! One ADI step solves a constant-coefficient tridiagonal system along
//! every x-line of the grid and then along every y-line.  The recurrence of
//! the tridiagonal solve creates dependences along the swept direction, so
//! a distribution that keeps the swept lines local makes the sweep
//! communication-free.  The paper's Figure 1 declares
//! `V(NX,NY) DYNAMIC, DIST(:, BLOCK)`, sweeps the columns locally, executes
//! `DISTRIBUTE V :: (BLOCK, :)` and sweeps the rows locally — confining all
//! communication to the redistribution.  The alternatives discussed in the
//! text (a single static distribution, or two statically distributed copies
//! connected by array assignment) are implemented here as well so the
//! experiments can compare them.

use crate::tridiag::{self, TridiagCoeffs};
use std::collections::HashMap;
use vf_dist::{DistType, Distribution, ProcessorView};
use vf_index::{IndexDomain, Point};
use vf_machine::{trace, CommStats, CommTracker, Machine};
use vf_runtime::{
    assign::assign_cached_with, redistribute_split, DistArray, ExecBackend, PlanCache,
};

/// The distribution strategy of an ADI run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdiStrategy {
    /// `( : , BLOCK)` throughout: the x-line sweeps are local, the y-line
    /// sweeps gather/scatter every line across processors.
    StaticColumns,
    /// `(BLOCK, : )` throughout: the y-line sweeps are local, the x-line
    /// sweeps communicate.
    StaticRows,
    /// Figure 1: redistribute between the two sweep phases so both sweeps
    /// are local; all communication happens in `DISTRIBUTE`.
    DynamicRedistribute,
    /// The §4 alternative: two statically distributed copies (one per
    /// layout) connected by array assignment.
    TwoCopies,
}

/// Configuration of an ADI run.
#[derive(Debug, Clone)]
pub struct AdiConfig {
    /// Grid size N (the grid is N×N).
    pub n: usize,
    /// Number of ADI iterations (each = x-sweep + y-sweep).
    pub iterations: usize,
    /// Distribution strategy.
    pub strategy: AdiStrategy,
}

/// Result of an ADI run.
#[derive(Debug, Clone)]
pub struct AdiResult {
    /// Accumulated machine statistics.
    pub stats: CommStats,
    /// Messages caused by gather/scatter inside sweeps.
    pub sweep_messages: usize,
    /// Bytes caused by gather/scatter inside sweeps.
    pub sweep_bytes: usize,
    /// Messages caused by redistribution or array assignment.
    pub redist_messages: usize,
    /// Bytes caused by redistribution or array assignment.
    pub redist_bytes: usize,
    /// The final field in dense column-major order.
    pub field: Vec<f64>,
    /// Sum of the final field.
    pub checksum: f64,
}

fn coeffs() -> TridiagCoeffs {
    TridiagCoeffs::diffusion(0.05)
}

/// The sequential reference: one iteration solves every column (x-line) and
/// then every row (y-line) of the dense column-major grid.
pub fn sequential_reference(n: usize, iterations: usize, initial: &[f64]) -> Vec<f64> {
    let mut field = initial.to_vec();
    let idx = |i: usize, j: usize| i + j * n;
    for _ in 0..iterations {
        // Sweep over x-lines: each column V(:, j).
        for j in 0..n {
            let mut line: Vec<f64> = (0..n).map(|i| field[idx(i, j)]).collect();
            tridiag::solve_in_place(coeffs(), &mut line);
            for i in 0..n {
                field[idx(i, j)] = line[i];
            }
        }
        // Sweep over y-lines: each row V(i, :).
        for i in 0..n {
            let mut line: Vec<f64> = (0..n).map(|j| field[idx(i, j)]).collect();
            tridiag::solve_in_place(coeffs(), &mut line);
            for j in 0..n {
                field[idx(i, j)] = line[j];
            }
        }
    }
    field
}

/// Performs one sweep of tridiagonal solves along dimension `sweep_dim` of
/// the distributed array (0 = x-lines/columns, 1 = y-lines/rows).
///
/// Lines that are fully local to a processor are solved without any
/// communication (the owner-computes rule).  Lines that span processors are
/// gathered to the processor owning the first element, solved there, and
/// scattered back — each contributing processor exchanges one message in
/// each direction, which is how the compiler-embedded communication of the
/// static-distribution variant behaves.
fn sweep(
    array: &mut DistArray<f64>,
    sweep_dim: usize,
    tracker: &vf_machine::CommTracker,
) -> (usize, usize) {
    let dist = array.dist().clone();
    let domain = dist.domain().clone();
    let n_sweep = domain.extent(sweep_dim);
    let other_dim = 1 - sweep_dim;
    let n_other = domain.extent(other_dim);
    let mut messages = 0usize;
    let mut bytes = 0usize;

    let _span = trace::OpenSpan::begin_with(trace::Phase::InteriorCompute, || {
        format!("sweep dim {sweep_dim}")
    });
    for line in 0..n_other {
        let fixed = domain.dim(other_dim).lower() + line as i64;
        // Collect the line and the owners of its elements.
        let mut values = Vec::with_capacity(n_sweep);
        let mut owner_counts: HashMap<usize, usize> = HashMap::new();
        let mut first_owner = None;
        for k in 0..n_sweep {
            let coord = domain.dim(sweep_dim).lower() + k as i64;
            let point = if sweep_dim == 0 {
                Point::d2(coord, fixed)
            } else {
                Point::d2(fixed, coord)
            };
            let owner = dist.owner(&point).expect("point in domain");
            first_owner.get_or_insert(owner);
            *owner_counts.entry(owner.0).or_insert(0) += 1;
            values.push(array.get(&point).expect("point in domain"));
        }
        let solver = first_owner.expect("line is non-empty");
        // Gather the remote parts, solve, scatter back.
        for (&owner, &count) in &owner_counts {
            if owner != solver.0 {
                tracker.send(owner, solver.0, count * 8);
                tracker.send(solver.0, owner, count * 8);
                messages += 2;
                bytes += 2 * count * 8;
            }
        }
        tridiag::solve_in_place(coeffs(), &mut values);
        tracker.compute(solver.0, tridiag::tridiag_flops(n_sweep));
        for (k, &v) in values.iter().enumerate() {
            let coord = domain.dim(sweep_dim).lower() + k as i64;
            let point = if sweep_dim == 0 {
                Point::d2(coord, fixed)
            } else {
                Point::d2(fixed, coord)
            };
            array.set(&point, v).expect("point in domain");
        }
    }
    (messages, bytes)
}

/// The Figure 1 `DISTRIBUTE` + sweep pair, **pipelined** through the
/// split-phase redistribution: the redistribution is posted, and as soon
/// as one destination processor's new local block has fully landed
/// ([`vf_runtime::SplitRedistribute::wait_dest`]) its now-local lines are
/// solved *directly inside the in-flight destination buffer* — while the
/// other processors' blocks are still streaming in on the executor's
/// background workers.  `finish_into` then installs the solved buffers.
///
/// Every line the target layout makes local is solved with the same
/// gathered values, the same solve, and the same per-line FLOP charge as
/// the blocking redistribute-then-[`sweep`] sequence, and the installed
/// buffers hold the same solutions at the same offsets — the result is
/// bitwise identical; only the schedule overlaps.
fn pipelined_distribute_sweep(
    array: &mut DistArray<f64>,
    new_dist: Distribution,
    sweep_dim: usize,
    tracker: &CommTracker,
    plans: &PlanCache,
    executor: &ExecBackend,
) -> (usize, usize) {
    let split = redistribute_split(array, new_dist, tracker, plans, executor).expect("same domain");
    let dist = split.new_dist().clone();
    let domain = dist.domain().clone();
    let locator = dist.locator();
    let n_sweep = domain.extent(sweep_dim);
    let other_dim = 1 - sweep_dim;
    let n_other = domain.extent(other_dim);
    let point_at = |k: usize, line: usize| {
        let coord = domain.dim(sweep_dim).lower() + k as i64;
        let fixed = domain.dim(other_dim).lower() + line as i64;
        if sweep_dim == 0 {
            Point::d2(coord, fixed)
        } else {
            Point::d2(fixed, coord)
        }
    };
    for &d in dist.proc_ids().to_vec().iter() {
        split.wait_dest(d.0);
        let _solve_span = trace::OpenSpan::begin_with(trace::Phase::InteriorCompute, || {
            format!("sweep dest {}", d.0)
        });
        split.with_dest_mut(d.0, |buf| {
            let mut values = vec![0.0f64; n_sweep];
            let mut offsets = vec![0usize; n_sweep];
            for line in 0..n_other {
                if dist.owner(&point_at(0, line)).expect("point in domain") != d {
                    continue;
                }
                for (k, (v, off)) in values.iter_mut().zip(offsets.iter_mut()).enumerate() {
                    let (owner, o) = locator.locate(&point_at(k, line)).expect("point in domain");
                    assert_eq!(owner, d, "the target layout keeps swept lines local");
                    *off = o;
                    *v = buf[o];
                }
                tridiag::solve_in_place(coeffs(), &mut values);
                tracker.compute(d.0, tridiag::tridiag_flops(n_sweep));
                for (&v, &off) in values.iter().zip(offsets.iter()) {
                    buf[off] = v;
                }
            }
        });
    }
    let (report, _split_report) = split
        .finish_into(array, tracker)
        .expect("array untouched while the handle was live");
    (report.messages, report.bytes)
}

fn dist_for(n: usize, machine: &Machine, dist_type: DistType) -> Distribution {
    Distribution::new(
        dist_type,
        IndexDomain::d2(n, n),
        ProcessorView::linear(machine.num_procs()),
    )
    .expect("ADI distributions are valid")
}

/// Runs the ADI iteration under the chosen strategy and returns statistics
/// plus the final field.
pub fn run(config: &AdiConfig, machine: &Machine, initial: &[f64]) -> AdiResult {
    let tracker = machine.tracker();
    let n = config.n;
    let mut sweep_messages = 0;
    let mut sweep_bytes = 0;
    let mut redist_messages = 0;
    let mut redist_bytes = 0;

    let field = match config.strategy {
        AdiStrategy::StaticColumns | AdiStrategy::StaticRows => {
            let dist_type = if config.strategy == AdiStrategy::StaticColumns {
                DistType::columns()
            } else {
                DistType::rows()
            };
            let mut v = DistArray::from_dense("V", dist_for(n, machine, dist_type), initial)
                .expect("initial field has N*N elements");
            for _ in 0..config.iterations {
                let (m, b) = sweep(&mut v, 0, &tracker);
                sweep_messages += m;
                sweep_bytes += b;
                let (m, b) = sweep(&mut v, 1, &tracker);
                sweep_messages += m;
                sweep_bytes += b;
            }
            v.to_dense()
        }
        AdiStrategy::DynamicRedistribute => {
            // Figure 1: V is DYNAMIC with initial (:, BLOCK).  The two
            // DISTRIBUTE schedules (cols->rows, rows->cols) are planned in
            // the first iteration and replayed from the cache afterwards —
            // the inspector cost is paid once per pattern, not per step.
            // Each DISTRIBUTE + sweep pair runs pipelined: destination
            // blocks stream in split-phase, and each processor's lines are
            // solved as soon as its block lands (see
            // [`pipelined_distribute_sweep`]).
            let plans = PlanCache::new();
            let executor = ExecBackend::auto();
            let mut v =
                DistArray::from_dense("V", dist_for(n, machine, DistType::columns()), initial)
                    .expect("initial field has N*N elements");
            for iter in 0..config.iterations {
                let _step_span =
                    trace::OpenSpan::begin_with(trace::Phase::Step, || format!("iter {iter}"));
                if iter > 0 {
                    // Return to the column distribution and solve the
                    // x-lines as each processor's columns arrive.
                    let (m, b) = pipelined_distribute_sweep(
                        &mut v,
                        dist_for(n, machine, DistType::columns()),
                        0,
                        &tracker,
                        &plans,
                        &executor,
                    );
                    redist_messages += m;
                    redist_bytes += b;
                } else {
                    // First x-sweep: the initial layout already keeps the
                    // columns local, nothing to redistribute.
                    let (m, b) = sweep(&mut v, 0, &tracker);
                    sweep_messages += m;
                    sweep_bytes += b;
                }
                // DISTRIBUTE V :: (BLOCK, :) pipelined with the y-sweep.
                let (m, b) = pipelined_distribute_sweep(
                    &mut v,
                    dist_for(n, machine, DistType::rows()),
                    1,
                    &tracker,
                    &plans,
                    &executor,
                );
                redist_messages += m;
                redist_bytes += b;
            }
            v.to_dense()
        }
        AdiStrategy::TwoCopies => {
            // Two statically distributed arrays connected by assignment;
            // both assignment schedules are planned once and reused, with
            // the copies on the auto-selected backend.
            let plans = PlanCache::new();
            let executor = ExecBackend::auto();
            let mut v_cols =
                DistArray::from_dense("V1", dist_for(n, machine, DistType::columns()), initial)
                    .expect("initial field has N*N elements");
            let mut v_rows: DistArray<f64> =
                DistArray::new("V2", dist_for(n, machine, DistType::rows()));
            for iter in 0..config.iterations {
                let _step_span =
                    trace::OpenSpan::begin_with(trace::Phase::Step, || format!("iter {iter}"));
                if iter > 0 {
                    let report =
                        assign_cached_with(&mut v_cols, &v_rows, &tracker, &plans, &executor)
                            .expect("same domain");
                    redist_messages += report.messages;
                    redist_bytes += report.bytes;
                }
                let (m, b) = sweep(&mut v_cols, 0, &tracker);
                sweep_messages += m;
                sweep_bytes += b;
                let report = assign_cached_with(&mut v_rows, &v_cols, &tracker, &plans, &executor)
                    .expect("same domain");
                redist_messages += report.messages;
                redist_bytes += report.bytes;
                let (m, b) = sweep(&mut v_rows, 1, &tracker);
                sweep_messages += m;
                sweep_bytes += b;
            }
            v_rows.to_dense()
        }
    };

    let checksum = field.iter().sum();
    AdiResult {
        stats: tracker.snapshot(),
        sweep_messages,
        sweep_bytes,
        redist_messages,
        redist_bytes,
        field,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use vf_machine::CostModel;

    const STRATEGIES: [AdiStrategy; 4] = [
        AdiStrategy::StaticColumns,
        AdiStrategy::StaticRows,
        AdiStrategy::DynamicRedistribute,
        AdiStrategy::TwoCopies,
    ];

    #[test]
    fn all_strategies_match_the_sequential_reference() {
        let n = 12;
        let initial = workloads::initial_grid(n, 11);
        let reference = sequential_reference(n, 2, &initial);
        for strategy in STRATEGIES {
            let machine = Machine::new(4, CostModel::zero());
            let result = run(
                &AdiConfig {
                    n,
                    iterations: 2,
                    strategy,
                },
                &machine,
                &initial,
            );
            for (a, b) in result.field.iter().zip(reference.iter()) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{strategy:?} diverges from the sequential reference"
                );
            }
        }
    }

    #[test]
    fn dynamic_redistribution_confines_communication_to_distribute() {
        let n = 16;
        let initial = workloads::initial_grid(n, 5);
        let machine = Machine::new(4, CostModel::zero());
        let dynamic = run(
            &AdiConfig {
                n,
                iterations: 1,
                strategy: AdiStrategy::DynamicRedistribute,
            },
            &machine,
            &initial,
        );
        // Both sweeps are local: every message belongs to the DISTRIBUTE.
        assert_eq!(dynamic.sweep_messages, 0);
        assert!(dynamic.redist_messages > 0);

        let machine = Machine::new(4, CostModel::zero());
        let static_cols = run(
            &AdiConfig {
                n,
                iterations: 1,
                strategy: AdiStrategy::StaticColumns,
            },
            &machine,
            &initial,
        );
        // The static layout pays communication inside the y-sweep instead.
        assert_eq!(static_cols.redist_messages, 0);
        assert!(static_cols.sweep_messages > 0);
    }

    #[test]
    fn static_rows_pays_in_the_x_sweep() {
        let n = 16;
        let initial = workloads::initial_grid(n, 5);
        let machine = Machine::new(4, CostModel::zero());
        let r = run(
            &AdiConfig {
                n,
                iterations: 1,
                strategy: AdiStrategy::StaticRows,
            },
            &machine,
            &initial,
        );
        assert!(r.sweep_messages > 0);
        assert_eq!(r.redist_messages, 0);
        // Exactly one sweep direction communicated: same count as the
        // column layout's (by symmetry of the square grid).
        let machine = Machine::new(4, CostModel::zero());
        let c = run(
            &AdiConfig {
                n,
                iterations: 1,
                strategy: AdiStrategy::StaticColumns,
            },
            &machine,
            &initial,
        );
        assert_eq!(r.sweep_messages, c.sweep_messages);
    }

    #[test]
    fn two_copies_moves_at_least_as_much_data_as_dynamic() {
        let n = 16;
        let initial = workloads::initial_grid(n, 9);
        let run_strategy = |strategy| {
            let machine = Machine::new(4, CostModel::zero());
            run(
                &AdiConfig {
                    n,
                    iterations: 3,
                    strategy,
                },
                &machine,
                &initial,
            )
        };
        let dynamic = run_strategy(AdiStrategy::DynamicRedistribute);
        let two_copies = run_strategy(AdiStrategy::TwoCopies);
        assert_eq!(two_copies.sweep_messages, 0);
        assert!(two_copies.redist_bytes >= dynamic.redist_bytes);
    }

    #[test]
    fn dynamic_wins_on_a_latency_bound_machine() {
        // The headline claim of Figure 1: with communication confined to an
        // aggregated redistribution, the dynamic strategy beats the static
        // one whose sweep sends many small per-line messages.
        let n = 32;
        let initial = workloads::initial_grid(n, 2);
        let run_strategy = |strategy| {
            let machine = Machine::new(8, CostModel::latency_bound());
            run(
                &AdiConfig {
                    n,
                    iterations: 2,
                    strategy,
                },
                &machine,
                &initial,
            )
            .stats
            .critical_time()
        };
        let dynamic = run_strategy(AdiStrategy::DynamicRedistribute);
        let static_cols = run_strategy(AdiStrategy::StaticColumns);
        assert!(
            dynamic < static_cols,
            "dynamic {dynamic} should beat static {static_cols} when latency dominates"
        );
    }
}
