//! Unstructured-mesh edge sweep over `INDIRECT` distributions — the
//! irregular workload the paper's dynamic-distribution design exists to
//! serve.
//!
//! The regular applications (ADI, smoothing, PIC) all live on arrays whose
//! best distributions are expressible in closed form (`BLOCK`, `B_BLOCK`).
//! Irregular codes — sweeps over an unstructured mesh — have no such form:
//! a good partition follows the mesh connectivity, and the resulting
//! owner-per-node *mapping array* is computed by a partitioner at run
//! time.  Vienna Fortran expresses this as `DISTRIBUTE A :: INDIRECT(map)`
//! and resolves ownership through the PARTI distributed translation table.
//!
//! This module provides:
//!
//! * [`Mesh`] — a CSR unstructured mesh whose node ids are *shuffled*, so
//!   naive `BLOCK`-by-id partitioning scatters neighbours across
//!   processors (the situation real meshes are in after generation);
//! * [`partition_coordinate`] / [`partition_greedy`] — two simple
//!   partitioners *producing* mapping arrays: a coordinate sort and a
//!   greedy graph-growing BFS;
//! * [`run_sweep`] — a Jacobi-style edge sweep at the language level
//!   (`VfScope`): cut-edge values arrive through the PARTI **incremental
//!   schedule** — each processor's irregular ghost region, derived once
//!   from the mesh connectivity and replayed from the plan cache every
//!   step — a `DCASE` dispatch on the current distribution class, and an
//!   optional mid-run repartitioning `DISTRIBUTE :: INDIRECT(map')` whose
//!   connect class (values + fluxes) moves as one fused schedule and whose
//!   stale halo schedule is invalidated by construction (the new map's
//!   fingerprint keys a fresh plan; the old translation table is evicted).
//!
//! The final values are independent of the partition bit-for-bit (the
//! update order is fixed by the CSR layout), so every configuration is
//! checked against every other — only the communication differs.

use std::sync::Arc;
use vf_core::prelude::*;
use vf_runtime::ghost::GhostRegion;
use vf_runtime::parti::{execute_halo_split, incremental_schedule_cached};
use vf_runtime::trace;

/// A CSR unstructured mesh with 2-D node coordinates.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// CSR row pointers, length `num_nodes() + 1`.
    pub xadj: Vec<usize>,
    /// CSR adjacency (0-based node ids); every undirected edge appears
    /// twice.
    pub adjncy: Vec<usize>,
    /// Node coordinates (used by the coordinate partitioner).
    pub coords: Vec<(f64, f64)>,
}

impl Mesh {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// The mesh's CSR adjacency as a runtime [`Connectivity`] over global
    /// offsets — what the incremental-schedule halo planner consumes.
    pub fn connectivity(&self) -> Connectivity {
        Connectivity::from_csr(self.xadj.clone(), self.adjncy.clone())
            .expect("a Mesh is a valid CSR")
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// The neighbours of node `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adjncy[self.xadj[u]..self.xadj[u + 1]]
    }
}

/// A deterministic pseudo-random linear-congruential step.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Builds an `nx × ny` grid mesh (4-neighbourhood plus a deterministic
/// sprinkle of diagonal edges), with jittered coordinates and — crucially —
/// a pseudo-random *permutation of node ids*: consecutive ids are not
/// neighbours, so distributing the node arrays `BLOCK` by id cuts most
/// edges, while a geometry- or connectivity-aware mapping array recovers
/// locality.
pub fn unstructured_mesh(nx: usize, ny: usize, seed: u64) -> Mesh {
    let n = nx * ny;
    assert!(n > 0, "mesh needs at least one node");
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    // Random permutation: grid cell (i, j) becomes node id perm[i + j*nx].
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (lcg(&mut state) as usize) % (i + 1);
        perm.swap(i, j);
    }
    let mut coords = vec![(0.0, 0.0); n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let connect = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        if !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    };
    for j in 0..ny {
        for i in 0..nx {
            let u = perm[i + j * nx];
            let jitter_x = (lcg(&mut state) % 1000) as f64 / 5000.0;
            let jitter_y = (lcg(&mut state) % 1000) as f64 / 5000.0;
            coords[u] = (i as f64 + jitter_x, j as f64 + jitter_y);
            if i + 1 < nx {
                connect(&mut adj, u, perm[i + 1 + j * nx]);
            }
            if j + 1 < ny {
                connect(&mut adj, u, perm[i + (j + 1) * nx]);
            }
            // Occasional diagonal, making the connectivity genuinely
            // irregular.
            if i + 1 < nx && j + 1 < ny && lcg(&mut state).is_multiple_of(4) {
                connect(&mut adj, u, perm[i + 1 + (j + 1) * nx]);
            }
        }
    }
    let mut xadj = Vec::with_capacity(n + 1);
    let mut adjncy = Vec::new();
    xadj.push(0);
    for list in &adj {
        adjncy.extend_from_slice(list);
        xadj.push(adjncy.len());
    }
    Mesh {
        xadj,
        adjncy,
        coords,
    }
}

/// A coordinate (geometric) partitioner: nodes sorted by `(x, y)` are cut
/// into `nprocs` contiguous chunks of (nearly) equal size.  Returns the
/// owner-per-node mapping array.
pub fn partition_coordinate(mesh: &Mesh, nprocs: usize) -> Vec<usize> {
    let n = mesh.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ax, ay) = mesh.coords[a];
        let (bx, by) = mesh.coords[b];
        (ax, ay, a)
            .partial_cmp(&(bx, by, b))
            .expect("mesh coordinates are finite")
    });
    let mut owners = vec![0usize; n];
    let chunk = n.div_ceil(nprocs.max(1));
    for (rank, &u) in order.iter().enumerate() {
        owners[u] = (rank / chunk).min(nprocs - 1);
    }
    owners
}

/// A greedy graph-growing partitioner: regions grow one processor at a
/// time by BFS over the connectivity until each holds an equal share —
/// the simplest of the partitioner family (RSB, greedy, …) the paper's
/// `INDIRECT` interface is designed to plug in.
pub fn partition_greedy(mesh: &Mesh, nprocs: usize) -> Vec<usize> {
    let n = mesh.num_nodes();
    let target = n.div_ceil(nprocs.max(1));
    let mut owners = vec![usize::MAX; n];
    let mut assigned = 0usize;
    // Deterministic sweep order for fresh BFS seeds: coordinate order.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by(|&a, &b| {
        (mesh.coords[a], a)
            .partial_cmp(&(mesh.coords[b], b))
            .expect("mesh coordinates are finite")
    });
    let mut seed_cursor = 0usize;
    for p in 0..nprocs {
        let quota = if p + 1 == nprocs {
            n - assigned
        } else {
            target.min(n - assigned)
        };
        let mut queue = std::collections::VecDeque::new();
        let mut taken = 0usize;
        while taken < quota {
            if queue.is_empty() {
                // Next unassigned seed (new component or exhausted front).
                while seed_cursor < n && owners[seeds[seed_cursor]] != usize::MAX {
                    seed_cursor += 1;
                }
                if seed_cursor >= n {
                    break;
                }
                queue.push_back(seeds[seed_cursor]);
            }
            let Some(u) = queue.pop_front() else { break };
            if owners[u] != usize::MAX {
                continue;
            }
            owners[u] = p;
            taken += 1;
            for &v in mesh.neighbors(u) {
                if owners[v] == usize::MAX {
                    queue.push_back(v);
                }
            }
        }
        assigned += taken;
    }
    debug_assert!(owners.iter().all(|&o| o < nprocs));
    owners
}

/// Number of mesh edges whose endpoints live on different processors under
/// the given owner map — the communication volume proxy every partitioner
/// minimises.
pub fn edge_cut(mesh: &Mesh, owners: &[usize]) -> usize {
    let mut cut = 0usize;
    for u in 0..mesh.num_nodes() {
        for &v in mesh.neighbors(u) {
            if u < v && owners[u] != owners[v] {
                cut += 1;
            }
        }
    }
    cut
}

/// How the node arrays are distributed for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshPartition {
    /// `BLOCK` by (shuffled) node id — the regular baseline.
    Block,
    /// `INDIRECT` through the coordinate partitioner's mapping array.
    Coordinate,
    /// `INDIRECT` through the greedy graph-growing mapping array.
    Greedy,
}

/// Configuration of a mesh sweep run.
#[derive(Debug, Clone)]
pub struct MeshSweepConfig {
    /// Number of Jacobi sweeps.
    pub steps: usize,
    /// Initial partition of the node arrays.
    pub partition: MeshPartition,
    /// When set, re-partition with [`partition_greedy`] *before* this step
    /// and redistribute the whole connect class with one fused
    /// `DISTRIBUTE :: INDIRECT(map')` — the dynamic repartitioning the
    /// paper's `DYNAMIC`/`DISTRIBUTE` design exists for.
    pub repartition_at: Option<usize>,
}

/// What a sweep run did.
#[derive(Debug, Clone)]
pub struct MeshSweepResult {
    /// Accumulated machine statistics.
    pub stats: CommStats,
    /// Final node values, dense by node id (bitwise partition-independent).
    pub values: Vec<f64>,
    /// Halo elements fetched over cut edges (incremental schedule), summed
    /// over steps.
    pub gathered_elements: usize,
    /// Aggregated halo-exchange messages, summed over steps.
    pub gather_messages: usize,
    /// Edge cut of the initial partition.
    pub edge_cut_initial: usize,
    /// Edge cut of the final partition (differs only after repartitioning).
    pub edge_cut_final: usize,
    /// The `DISTRIBUTE` report of the repartitioning, when one ran.
    pub repartition: Option<DistributeReport>,
    /// `DCASE` arm label selected for the sweep ("parti" for indirect
    /// distributions, "regular" for block).
    pub dcase_arm: &'static str,
    /// Translation-table lookup counters accumulated by planning against
    /// indirect distributions (zeroes for the block baseline).
    pub directory: TranslationStats,
    /// Plan-cache statistics of the scope (schedule reuse across steps).
    pub plan_cache: PlanCacheStats,
}

const DAMP: f64 = 0.5;
const FLOPS_PER_EDGE: usize = 2;

fn owners_of(dist: &Distribution, n: usize) -> Vec<usize> {
    let locator = dist.locator();
    (0..n).map(|u| locator.locate_lin(u).0 .0).collect()
}

fn dist_type_for(mesh: &Mesh, partition: MeshPartition, nprocs: usize) -> DistType {
    match partition {
        MeshPartition::Block => DistType::block1d(),
        MeshPartition::Coordinate => DistType::indirect1d(Arc::new(
            IndirectMap::new(partition_coordinate(mesh, nprocs)).expect("mesh is non-empty"),
        )),
        MeshPartition::Greedy => DistType::indirect1d(Arc::new(
            IndirectMap::new(partition_greedy(mesh, nprocs)).expect("mesh is non-empty"),
        )),
    }
}

/// Runs the edge sweep on `machine` and returns statistics plus the final
/// values.
pub fn run_sweep(mesh: &Mesh, config: &MeshSweepConfig, machine: &Machine) -> MeshSweepResult {
    run_sweep_inner(mesh, config, machine, None, 0).0
}

/// The sweep engine behind [`run_sweep`]: optionally seeds `VAL` from
/// `initial` (dense by node id) instead of the analytic formula and starts
/// the step loop at `start_step` — running steps `start_step..config.steps`
/// with `repartition_at` still interpreted as an absolute step index.  Also
/// returns the final distribution of `VAL`, which the checkpoint/restart
/// driver saves under.
fn run_sweep_inner(
    mesh: &Mesh,
    config: &MeshSweepConfig,
    machine: &Machine,
    initial: Option<&[f64]>,
    start_step: usize,
) -> (MeshSweepResult, Distribution) {
    let n = mesh.num_nodes();
    let nprocs = machine.num_procs();
    let mut scope: VfScope<f64> = VfScope::new(machine.clone());

    // DYNAMIC VAL(N) RANGE((BLOCK), (INDIRECT(*))), connected FLUX(N).
    scope
        .declare_dynamic(
            DynamicDecl::new("VAL", IndexDomain::d1(n))
                .range([
                    DistPattern::dims(vec![DimPattern::Block]),
                    DistPattern::dims(vec![DimPattern::IndirectAny]),
                ])
                .initial(dist_type_for(mesh, config.partition, nprocs)),
        )
        .expect("declaration is valid");
    scope
        .declare_secondary(SecondaryDecl::extraction("FLUX", IndexDomain::d1(n), "VAL"))
        .expect("VAL is a dynamic primary");
    for u in 0..n {
        let point = Point::d1(u as i64 + 1);
        let x = u as f64;
        let value = match initial {
            Some(values) => values[u],
            None => (x * 0.37).sin(),
        };
        scope
            .array_mut("VAL")
            .expect("distributed")
            .set(&point, value)
            .expect("in domain");
        scope
            .array_mut("FLUX")
            .expect("distributed")
            .set(&point, (x * 0.11).cos())
            .expect("in domain");
    }

    // DCASE dispatch: the sweep strategy follows the *current* distribution
    // class (paper §2.5) — the PARTI inspector/executor arm for INDIRECT,
    // the regular arm for BLOCK.
    let dcase = Dcase::new(["VAL"])
        .when_positional([DistPattern::dims(vec![DimPattern::IndirectAny])])
        .labelled("parti")
        .when_positional([DistPattern::dims(vec![DimPattern::Block])])
        .labelled("regular")
        .default_case()
        .labelled("other");
    let arm = dcase
        .select(&scope)
        .expect("VAL is distributed")
        .expect("a clause matches");
    let dcase_arm: &'static str = ["parti", "regular", "other"][arm];

    let edge_cut_initial = edge_cut(
        mesh,
        &owners_of(scope.array("VAL").expect("distributed").dist(), n),
    );
    let mut repartition: Option<DistributeReport> = None;
    let mut gathered_elements = 0usize;
    let mut gather_messages = 0usize;
    // Directory accounting: the sweep may plan against several translation
    // tables (initial map, post-repartition map).  The tables' counters are
    // cumulative per process, so snapshot a baseline *before* the first
    // planning against each table and report the summed deltas — this run's
    // lookups only, across all its tables.
    let mut tracked: Vec<(std::sync::Arc<DistTranslationTable>, TranslationStats)> = Vec::new();
    let track = |tracked: &mut Vec<(std::sync::Arc<DistTranslationTable>, TranslationStats)>,
                 dist: &Distribution| {
        if !dist.dist_type().has_indirect() {
            return;
        }
        let table = table_for(dist);
        if !tracked
            .iter()
            .any(|(t, _)| std::sync::Arc::ptr_eq(t, &table))
        {
            let baseline = table.stats();
            tracked.push((table, baseline));
        }
    };
    track(
        &mut tracked,
        scope.array("VAL").expect("distributed").dist(),
    );

    let conn = mesh.connectivity();
    for step in start_step..config.steps {
        let _step_span = trace::OpenSpan::begin_with(trace::Phase::Step, || format!("step {step}"));
        if config.repartition_at == Some(step) {
            // The partitioner *produces* the new mapping array; the
            // executable DISTRIBUTE moves the whole connect class (VAL and
            // FLUX) as one fused schedule.
            let old = scope.array("VAL").expect("distributed").dist().clone();
            let map = Arc::new(
                IndirectMap::new(partition_greedy(mesh, nprocs)).expect("mesh is non-empty"),
            );
            let new_type = DistType::indirect1d(map);
            // Baseline the new map's table before the DISTRIBUTE plans
            // against it.
            let new_dist = Distribution::new(
                new_type.clone(),
                IndexDomain::d1(n),
                scope.default_procs().clone(),
            )
            .expect("map matches the domain");
            track(&mut tracked, &new_dist);
            let report = scope
                .distribute(DistributeStmt::new("VAL", new_type))
                .expect("INDIRECT is within the declared RANGE");
            // The old partition's halo schedule is stale by construction
            // (the new map's fingerprint keys a fresh plan); its
            // translation table will never be consulted again either, so
            // evict the stale directory from the bounded registry — unless
            // the repartitioner reproduced the same map, in which case the
            // directory is still live.
            let now = scope.array("VAL").expect("distributed").dist().clone();
            if old.dist_type().has_indirect() && old.fingerprint() != now.fingerprint() {
                vf_runtime::translation::invalidate(old.fingerprint());
            }
            repartition = Some(report);
        }

        let dist = scope.array("VAL").expect("distributed").dist().clone();
        let node_owner = owners_of(&dist, n);
        // Inspector: the incremental schedule derives each processor's
        // halo — every neighbour of an owned node that lives elsewhere —
        // directly from the mesh connectivity, resolved through the
        // distributed translation table for INDIRECT maps.  The plan is
        // keyed by (map fingerprint, connectivity fingerprint): sweeps
        // over an unchanged partition replay it from the cache, and a
        // repartitioning replans by construction.
        let schedule = incremental_schedule_cached(&dist, &conn, scope.plan_cache())
            .expect("mesh connectivity matches the domain");
        gathered_elements += schedule.num_elements();
        gather_messages += schedule.num_messages();
        // Post the cut-edge halo split-phase: the per-pair payloads stream
        // in on the executor's background workers while the interior nodes
        // (no off-processor neighbour) are swept below.
        let split = execute_halo_split(
            scope.array("VAL").expect("distributed"),
            &schedule,
            scope.tracker(),
            scope.executor(),
        )
        .expect("schedule matches the distribution");

        // Executor: Jacobi update in fixed CSR order, so the result is
        // bitwise independent of the partition.  Split-phase ordering:
        // interior nodes run in the halo's shadow, cut-boundary nodes
        // after the wait — every node's reads and arithmetic are
        // unchanged.
        let mut new_values = vec![0.0f64; n];
        {
            let val = scope.array("VAL").expect("distributed");
            let tracker = scope.tracker();
            let mut update = |u: usize, halo: Option<&GhostRegion<f64>>| {
                let point_u = Point::d1(u as i64 + 1);
                let own = val.get(&point_u).expect("in domain");
                let nbrs = mesh.neighbors(u);
                let mut acc = 0.0;
                for &v in nbrs {
                    let point_v = Point::d1(v as i64 + 1);
                    acc += if node_owner[v] == node_owner[u] {
                        val.get(&point_v).expect("in domain")
                    } else {
                        halo.expect("cut edges sweep after the halo lands")
                            .get(ProcId(node_owner[u]), &point_v)
                            .expect("cut edge is in the incremental schedule")
                    };
                }
                new_values[u] = if nbrs.is_empty() {
                    own
                } else {
                    (1.0 - DAMP) * own + DAMP * acc / nbrs.len() as f64
                };
                tracker.compute(node_owner[u], nbrs.len() * FLOPS_PER_EDGE);
            };
            let is_interior = |u: usize| {
                mesh.neighbors(u)
                    .iter()
                    .all(|&v| node_owner[v] == node_owner[u])
            };
            let interior_span =
                trace::OpenSpan::begin_static(trace::Phase::InteriorCompute, "interior");
            for u in (0..n).filter(|&u| is_interior(u)) {
                update(u, None);
            }
            interior_span.end();
            let (mut regions, _halo_report) = split
                .wait(tracker)
                .expect("split-phase halo exchange survives injected faults");
            let halo = regions.pop().expect("exactly one halo part");
            for u in (0..n).filter(|&u| !is_interior(u)) {
                update(u, Some(&halo));
            }
        }
        let val = scope.array_mut("VAL").expect("distributed");
        for (u, &value) in new_values.iter().enumerate() {
            val.set(&Point::d1(u as i64 + 1), value).expect("in domain");
        }
        let _ = step;
    }

    let mut directory = TranslationStats::default();
    for (table, baseline) in &tracked {
        let now = table.stats();
        directory.home_hits += now.home_hits - baseline.home_hits;
        directory.cache_hits += now.cache_hits - baseline.cache_hits;
        directory.page_fetches += now.page_fetches - baseline.page_fetches;
        directory.fetched_bytes += now.fetched_bytes - baseline.fetched_bytes;
    }
    let final_dist = scope.array("VAL").expect("distributed").dist().clone();
    let result = MeshSweepResult {
        stats: scope.stats(),
        values: scope.array("VAL").expect("distributed").to_dense(),
        gathered_elements,
        gather_messages,
        edge_cut_initial,
        edge_cut_final: edge_cut(mesh, &owners_of(&final_dist, n)),
        repartition,
        dcase_arm,
        directory,
        plan_cache: scope.plan_cache().stats(),
    };
    (result, final_dist)
}

/// Runs the sweep to `checkpoint_at`, checkpoints `VAL` under its
/// *current* distribution (post-repartition when `config.repartition_at`
/// fell inside the first phase), restores the checkpoint into
/// `resume_partition` through redistribute-on-read, and finishes steps
/// `checkpoint_at..config.steps` under the new partition — the
/// driver-level checkpoint/repartition/restart the paper's dynamic
/// `DISTRIBUTE` makes natural.  The final values are bitwise identical to
/// an uninterrupted [`run_sweep`] because the sweep order is fixed by the
/// CSR layout and the restore preserves every element bit-for-bit.
///
/// The returned result describes the *second* phase (its stats, edge cuts
/// and cache counters cover steps `checkpoint_at..`); the values are the
/// full run's.
///
/// # Errors
/// Checkpoint validation failures ([`vf_runtime::RuntimeError`]) from the
/// save/restore path.
pub fn run_sweep_with_restart(
    mesh: &Mesh,
    config: &MeshSweepConfig,
    machine: &Machine,
    checkpoint_at: usize,
    resume_partition: MeshPartition,
    store: &vf_runtime::CheckpointStore,
) -> vf_runtime::Result<MeshSweepResult> {
    assert!(
        checkpoint_at <= config.steps,
        "checkpoint step exceeds the sweep length"
    );
    let n = mesh.num_nodes();
    let nprocs = machine.num_procs();
    let phase1 = MeshSweepConfig {
        steps: checkpoint_at,
        partition: config.partition,
        repartition_at: config.repartition_at.filter(|&r| r < checkpoint_at),
    };
    let (first, dist_at_ckpt) = run_sweep_inner(mesh, &phase1, machine, None, 0);
    let tracker = machine.tracker();
    let val = DistArray::from_dense("VAL", dist_at_ckpt, &first.values)?;
    store.save(&val, checkpoint_at as u64, &tracker)?;

    // Redistribute-on-read: the file distribution (whatever phase 1 ended
    // under, INDIRECT included) is re-mapped onto the resume partition by
    // an ordinary cached communication plan.
    let live = Distribution::new(
        dist_type_for(mesh, resume_partition, nprocs),
        IndexDomain::d1(n),
        ProcessorView::linear(nprocs),
    )?;
    let cache = PlanCache::new();
    let restored = store.restore_into::<f64, _>(&live, &tracker, &cache, &SerialExecutor)?;
    let resumed = restored.array.to_dense();

    let phase2 = MeshSweepConfig {
        steps: config.steps,
        partition: resume_partition,
        repartition_at: config.repartition_at.filter(|&r| r >= checkpoint_at),
    };
    let (second, _) = run_sweep_inner(
        mesh,
        &phase2,
        machine,
        Some(&resumed),
        restored.step as usize,
    );
    Ok(second)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        unstructured_mesh(12, 8, 42)
    }

    fn machine(p: usize) -> Machine {
        Machine::new(p, CostModel::from_alpha_beta(1.0, 0.01))
    }

    #[test]
    fn mesh_is_deterministic_and_connected_enough() {
        let a = mesh();
        let b = mesh();
        assert_eq!(a.xadj, b.xadj);
        assert_eq!(a.adjncy, b.adjncy);
        assert_eq!(a.num_nodes(), 96);
        assert!(a.num_edges() >= 12 * 7 + 11 * 8);
        // CSR symmetry: every edge appears in both directions.
        for u in 0..a.num_nodes() {
            for &v in a.neighbors(u) {
                assert!(a.neighbors(v).contains(&u), "{u} -> {v} not symmetric");
            }
        }
        assert_ne!(unstructured_mesh(12, 8, 7).adjncy, a.adjncy);
    }

    #[test]
    fn partitioners_balance_and_beat_block_by_id() {
        let m = mesh();
        let p = 4;
        for owners in [partition_coordinate(&m, p), partition_greedy(&m, p)] {
            assert_eq!(owners.len(), m.num_nodes());
            assert!(owners.iter().all(|&o| o < p));
            let mut counts = vec![0usize; p];
            for &o in &owners {
                counts[o] += 1;
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max - min <= m.num_nodes() / p, "imbalanced: {counts:?}");
        }
        // Shuffled node ids make BLOCK-by-id a near-random partition; both
        // mesh-aware partitioners must cut far fewer edges.
        let block: Vec<usize> = (0..m.num_nodes()).map(|u| u * p / m.num_nodes()).collect();
        let cut_block = edge_cut(&m, &block);
        let cut_coord = edge_cut(&m, &partition_coordinate(&m, p));
        let cut_greedy = edge_cut(&m, &partition_greedy(&m, p));
        assert!(
            cut_coord * 2 < cut_block,
            "coordinate {cut_coord} vs block {cut_block}"
        );
        assert!(
            cut_greedy * 2 < cut_block,
            "greedy {cut_greedy} vs block {cut_block}"
        );
    }

    #[test]
    fn sweep_values_are_partition_independent() {
        let m = mesh();
        let steps = 3;
        let run = |partition, repartition_at| {
            run_sweep(
                &m,
                &MeshSweepConfig {
                    steps,
                    partition,
                    repartition_at,
                },
                &machine(4),
            )
        };
        let block = run(MeshPartition::Block, None);
        let coord = run(MeshPartition::Coordinate, None);
        let greedy = run(MeshPartition::Greedy, None);
        let remapped = run(MeshPartition::Coordinate, Some(2));
        assert_eq!(block.values, coord.values, "block vs coordinate");
        assert_eq!(block.values, greedy.values, "block vs greedy");
        assert_eq!(block.values, remapped.values, "block vs remapped");
        // DCASE selected the right arm for each class.
        assert_eq!(block.dcase_arm, "regular");
        assert_eq!(coord.dcase_arm, "parti");
        // The mesh-aware partition fetches fewer elements over cut edges
        // and the indirect planning walked the translation table.
        assert!(coord.gathered_elements < block.gathered_elements);
        assert!(coord.directory.page_fetches + coord.directory.home_hits > 0);
        assert_eq!(block.directory, TranslationStats::default());
    }

    #[test]
    fn repartitioning_moves_the_class_as_one_fused_distribute() {
        let m = mesh();
        let result = run_sweep(
            &m,
            &MeshSweepConfig {
                steps: 4,
                partition: MeshPartition::Block,
                repartition_at: Some(2),
            },
            &machine(4),
        );
        let report = result.repartition.expect("repartitioning ran");
        // VAL and FLUX moved together: fused to one message per pair.
        assert!(report.fused.is_some());
        assert!(report.messages() < report.unfused_messages());
        assert_eq!(report.per_array.len(), 2);
        // The greedy remap leaves a better partition than shuffled BLOCK.
        assert!(result.edge_cut_final * 2 < result.edge_cut_initial);
        // After the remap the gather schedule was replanned (different
        // fingerprint), before it the cached schedule was reused.
        assert!(result.plan_cache.hits > 0);
    }

    #[test]
    fn checkpoint_restart_with_repartition_is_bitwise_transparent() {
        let m = mesh();
        let dir = std::env::temp_dir().join(format!("vf_mesh_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = vf_runtime::CheckpointStore::new(dir);
        // Phase 1 starts Coordinate-INDIRECT and repartitions to Greedy at
        // step 1; the checkpoint at step 3 is therefore written under the
        // *greedy* INDIRECT distribution; the restore redistributes it
        // INDIRECT → BLOCK for phase 2.
        let config = MeshSweepConfig {
            steps: 5,
            partition: MeshPartition::Coordinate,
            repartition_at: Some(1),
        };
        let uninterrupted = run_sweep(&m, &config, &machine(4));
        let restarted =
            run_sweep_with_restart(&m, &config, &machine(4), 3, MeshPartition::Block, &store)
                .expect("checkpoint/restart round-trips");
        assert_eq!(
            restarted.values, uninterrupted.values,
            "restarted sweep diverges from the uninterrupted run"
        );
        assert_eq!(store.latest_step(), Some(3));
        // Phase 2 ran the regular DCASE arm under the BLOCK resume
        // partition.
        assert_eq!(restarted.dcase_arm, "regular");
    }

    #[test]
    fn cached_schedules_are_reused_across_steps() {
        let m = mesh();
        let result = run_sweep(
            &m,
            &MeshSweepConfig {
                steps: 4,
                partition: MeshPartition::Greedy,
                repartition_at: None,
            },
            &machine(4),
        );
        // One gather plan, three cache hits; directory pages were fetched
        // once (cold) and never again.
        assert_eq!(result.plan_cache.misses, 1);
        assert_eq!(result.plan_cache.hits, 3);
        let first_fetches = result.directory.page_fetches;
        assert!(first_fetches > 0);
        assert!(result.directory.cache_hits > 0);
    }
}
