//! `INDIRECT(map)` mapping arrays — the irregular distribution function of
//! Vienna Fortran.
//!
//! A `DYNAMIC` array may be distributed through a *mapping array*: a
//! user- or partitioner-computed array giving, for every element, the
//! processor that is to own it (the paper's interface to "external
//! distribution generators", serving the irregular codes the PARTI
//! routines were built for).  [`IndirectMap`] is the evaluated form of
//! that mapping array: the owner of every element plus the two derived
//! tables the runtime needs for O(1) local addressing — the local offset
//! of every element on its owner, and each owner's local→global table in
//! local storage order.
//!
//! Elements assigned to one owner keep their global order locally, so
//! consecutive same-owner elements occupy consecutive local offsets and
//! the communication planner's run-length encoding coalesces them into
//! single copies.

use crate::{DimSegment, DistError, Result};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// An evaluated `INDIRECT` mapping array over one dimension: `owners[i]`
/// is the (0-based) processor coordinate owning global offset `i`.
///
/// The map is immutable once built; share it between arrays with
/// `Arc<IndirectMap>` (a connect class distributed through one map holds
/// one copy of the tables).  Equality compares the full owner array; the
/// hash uses the precomputed 64-bit [`IndirectMap::fingerprint`] so that
/// hashing a distribution type stays O(1) regardless of the map size.
#[derive(Debug, Clone)]
pub struct IndirectMap {
    /// Owner (processor coordinate) of each global offset.
    owners: Vec<u32>,
    /// Local offset of each global offset on its owner.
    local_offsets: Vec<u32>,
    /// For each processor coordinate, the owned global offsets in local
    /// storage (= ascending global) order.
    local_to_global: Vec<Vec<u32>>,
    /// Highest owner coordinate appearing in the map.
    max_owner: usize,
    /// 64-bit structural fingerprint of the owner array.
    fingerprint: u64,
}

impl IndirectMap {
    /// Builds a map from the per-element owner array (0-based processor
    /// coordinates).
    ///
    /// # Errors
    /// [`DistError::EmptyIndirectMap`] when `owners` is empty.
    pub fn new(owners: Vec<usize>) -> Result<Self> {
        if owners.is_empty() {
            return Err(DistError::EmptyIndirectMap);
        }
        let max_owner = owners.iter().copied().max().expect("non-empty");
        let mut local_offsets = vec![0u32; owners.len()];
        let mut local_to_global: Vec<Vec<u32>> = vec![Vec::new(); max_owner + 1];
        let mut owners32 = Vec::with_capacity(owners.len());
        for (lin, &o) in owners.iter().enumerate() {
            local_offsets[lin] = local_to_global[o].len() as u32;
            local_to_global[o].push(lin as u32);
            owners32.push(o as u32);
        }
        let mut h = DefaultHasher::new();
        owners32.hash(&mut h);
        Ok(Self {
            owners: owners32,
            local_offsets,
            local_to_global,
            max_owner,
            fingerprint: h.finish(),
        })
    }

    /// Builds a map of `n` elements from an owner function over global
    /// offsets — convenient for partitioners.
    pub fn from_fn(n: usize, mut owner_of: impl FnMut(usize) -> usize) -> Result<Self> {
        Self::new((0..n).map(&mut owner_of).collect())
    }

    /// Number of elements covered by the map.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the map covers no elements (never true for a constructed
    /// map).
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Highest owner coordinate appearing in the map.
    pub fn max_owner(&self) -> usize {
        self.max_owner
    }

    /// The 64-bit structural fingerprint of the owner array: two maps with
    /// the same fingerprint assign (up to hash collision) every element to
    /// the same owner.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Owner coordinate of global offset `offset`.
    #[inline]
    pub fn owner(&self, offset: usize) -> usize {
        self.owners[offset] as usize
    }

    /// Local offset of global offset `offset` on its owner.
    #[inline]
    pub fn local_offset(&self, offset: usize) -> usize {
        self.local_offsets[offset] as usize
    }

    /// Number of elements owned by processor coordinate `proc`.
    pub fn local_count(&self, proc: usize) -> usize {
        self.local_to_global.get(proc).map(|v| v.len()).unwrap_or(0)
    }

    /// Global offset stored at local offset `local` on `proc`.
    ///
    /// # Panics
    /// When `local` is outside `proc`'s local count (callers index within
    /// [`IndirectMap::local_count`], like every [`crate::DimDist`]).
    pub fn global_offset(&self, proc: usize, local: usize) -> usize {
        self.local_to_global[proc][local] as usize
    }

    /// The contiguous global segment owned by `proc`, when its owned set is
    /// one contiguous run (`None` for scattered owner sets).  The owned
    /// offsets are kept in ascending order, so contiguity is a
    /// first/last/len check.
    pub fn segment(&self, proc: usize) -> Option<DimSegment> {
        let table = self.local_to_global.get(proc)?;
        let (&first, &last) = (table.first()?, table.last()?);
        if (last - first) as usize + 1 == table.len() {
            Some(DimSegment {
                start: first as usize,
                len: table.len(),
            })
        } else {
            None
        }
    }

    /// The raw owner array (0-based processor coordinates per global
    /// offset).
    pub fn owners(&self) -> impl Iterator<Item = usize> + '_ {
        self.owners.iter().map(|&o| o as usize)
    }

    /// Heap bytes held by the map's tables — what sharing the map through
    /// an `Arc` saves, and what cache-budget consumers must account for.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.owners.len() + self.local_offsets.len()) * size_of::<u32>()
            + self
                .local_to_global
                .iter()
                .map(|v| size_of::<Vec<u32>>() + v.len() * size_of::<u32>())
                .sum::<usize>()
    }
}

impl PartialEq for IndirectMap {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint && self.owners == other.owners
    }
}

impl Eq for IndirectMap {}

impl Hash for IndirectMap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_tables_are_consistent() {
        let map = IndirectMap::new(vec![2, 0, 0, 1, 2, 0]).unwrap();
        assert_eq!(map.len(), 6);
        assert!(!map.is_empty());
        assert_eq!(map.max_owner(), 2);
        assert_eq!(map.local_count(0), 3);
        assert_eq!(map.local_count(1), 1);
        assert_eq!(map.local_count(2), 2);
        assert_eq!(map.local_count(7), 0);
        // Owners keep their elements in ascending global order.
        assert_eq!(map.global_offset(0, 0), 1);
        assert_eq!(map.global_offset(0, 1), 2);
        assert_eq!(map.global_offset(0, 2), 5);
        for lin in 0..6 {
            let o = map.owner(lin);
            let l = map.local_offset(lin);
            assert_eq!(map.global_offset(o, l), lin, "round trip at {lin}");
        }
        assert_eq!(map.owners().collect::<Vec<_>>(), vec![2, 0, 0, 1, 2, 0]);
    }

    #[test]
    fn segments_detect_contiguity() {
        let map = IndirectMap::new(vec![0, 0, 1, 1, 1, 2]).unwrap();
        assert_eq!(map.segment(0), Some(DimSegment { start: 0, len: 2 }));
        assert_eq!(map.segment(1), Some(DimSegment { start: 2, len: 3 }));
        assert_eq!(map.segment(2), Some(DimSegment { start: 5, len: 1 }));
        let scattered = IndirectMap::new(vec![0, 1, 0, 1]).unwrap();
        assert_eq!(scattered.segment(0), None);
        assert_eq!(scattered.segment(9), None);
    }

    #[test]
    fn fingerprints_identify_owner_arrays() {
        let a = IndirectMap::new(vec![0, 1, 0, 1]).unwrap();
        let b = IndirectMap::new(vec![0, 1, 0, 1]).unwrap();
        let c = IndirectMap::new(vec![1, 0, 0, 1]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a, c);
        assert!(IndirectMap::new(Vec::new()).is_err());
    }

    #[test]
    fn from_fn_matches_explicit() {
        let a = IndirectMap::from_fn(8, |i| i % 3).unwrap();
        let b = IndirectMap::new((0..8).map(|i| i % 3).collect()).unwrap();
        assert_eq!(a, b);
        assert!(a.estimated_bytes() >= 8 * 2 * 4);
    }
}
