//! Processor arrays and processor views (sections).

use crate::{DistError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use vf_index::{IndexDomain, Point, Section};

/// Identifier of a single (virtual) processor.
///
/// Processor ids are dense `0..num_procs` integers assigned in column-major
/// order over the declaring [`ProcessorArray`]'s index domain, so they can
/// directly index per-processor vectors in the runtime and the simulated
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The processor id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A declared processor array, e.g. `PROCESSORS R(1:M, 1:M)` from the
/// paper's Example 1, or the default 1-D arrangement `$NP` processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorArray {
    name: String,
    domain: IndexDomain,
}

impl ProcessorArray {
    /// Declares a processor array with the given name and index domain.
    pub fn new(name: impl Into<String>, domain: IndexDomain) -> Self {
        Self {
            name: name.into(),
            domain,
        }
    }

    /// The default 1-D processor arrangement `P(1:n)` — what the intrinsic
    /// `$NP` exposes in the paper.
    pub fn linear(n: usize) -> Self {
        Self::new("P", IndexDomain::d1(n))
    }

    /// A 2-D processor grid `R(1:rows, 1:cols)`.
    pub fn grid2d(rows: usize, cols: usize) -> Self {
        Self::new("R", IndexDomain::d2(rows, cols))
    }

    /// The declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The processor index domain.
    pub fn domain(&self) -> &IndexDomain {
        &self.domain
    }

    /// Rank of the processor array.
    pub fn rank(&self) -> usize {
        self.domain.rank()
    }

    /// Total number of processors.
    pub fn num_procs(&self) -> usize {
        self.domain.size()
    }

    /// The processor id of the processor at `point` in the declaration's
    /// index domain.
    pub fn proc_at(&self, point: &Point) -> Result<ProcId> {
        Ok(ProcId(self.domain.linearize(point)?))
    }

    /// The declaration-domain point of processor `id`.
    pub fn point_of(&self, id: ProcId) -> Result<Point> {
        Ok(self.domain.delinearize(id.0)?)
    }

    /// A view covering the entire processor array.
    pub fn full_view(self: &Arc<Self>) -> ProcessorView {
        ProcessorView {
            array: Arc::clone(self),
            section: Section::all(&self.domain),
        }
    }
}

impl fmt::Display for ProcessorArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.domain)
    }
}

/// A rectangular section of a processor array — the *processor section* that
/// a distribution expression targets (`DIST (...) TO R(...)`).
///
/// The view behaves as an `r`-dimensional processor grid whose extents are
/// the per-dimension counts of the section.  Grid coordinates are 0-based;
/// [`ProcessorView::proc_at_grid`] converts them back to global [`ProcId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorView {
    array: Arc<ProcessorArray>,
    section: Section,
}

impl ProcessorView {
    /// Creates a view from a processor array and a section of its domain.
    pub fn new(array: Arc<ProcessorArray>, section: Section) -> Result<Self> {
        if section.rank() != array.rank() {
            return Err(DistError::ProcessorRankMismatch {
                distributed_dims: section.rank(),
                proc_rank: array.rank(),
            });
        }
        if !section.within(array.domain()) {
            return Err(DistError::NoSuchProcessor {
                proc: usize::MAX,
                count: array.num_procs(),
            });
        }
        Ok(Self { array, section })
    }

    /// A view over all processors of a freshly declared linear arrangement.
    pub fn linear(n: usize) -> Self {
        Arc::new(ProcessorArray::linear(n)).full_view()
    }

    /// A view over all processors of a freshly declared 2-D grid.
    pub fn grid2d(rows: usize, cols: usize) -> Self {
        Arc::new(ProcessorArray::grid2d(rows, cols)).full_view()
    }

    /// The underlying processor array.
    pub fn array(&self) -> &Arc<ProcessorArray> {
        &self.array
    }

    /// The section of the processor array covered by the view.
    pub fn section(&self) -> &Section {
        &self.section
    }

    /// Grid rank of the view (same as the processor array's rank).
    pub fn rank(&self) -> usize {
        self.section.rank()
    }

    /// Per-dimension processor counts of the view.
    pub fn grid_extents(&self) -> Vec<usize> {
        self.section.triplets().iter().map(|t| t.len()).collect()
    }

    /// Number of processors in the view.
    pub fn num_procs(&self) -> usize {
        self.section.size()
    }

    /// The global processor id at 0-based grid coordinates `grid`.
    pub fn proc_at_grid(&self, grid: &[usize]) -> Result<ProcId> {
        if grid.len() != self.rank() {
            return Err(DistError::ProcessorRankMismatch {
                distributed_dims: grid.len(),
                proc_rank: self.rank(),
            });
        }
        let mut coords = Vec::with_capacity(self.rank());
        for (d, &g) in grid.iter().enumerate() {
            let t = self.section.triplet(d);
            if g >= t.len() {
                return Err(DistError::NoSuchProcessor {
                    proc: g,
                    count: t.len(),
                });
            }
            coords.push(t.index_at(g)?);
        }
        self.array.proc_at(&Point::new(&coords)?)
    }

    /// The 0-based grid coordinates of global processor `id` within the
    /// view, or an error if the processor is not part of the view.
    pub fn grid_of(&self, id: ProcId) -> Result<Vec<usize>> {
        let point = self.array.point_of(id)?;
        if !self.section.contains(&point) {
            return Err(DistError::NoSuchProcessor {
                proc: id.0,
                count: self.num_procs(),
            });
        }
        let mut grid = Vec::with_capacity(self.rank());
        for d in 0..self.rank() {
            let t = self.section.triplet(d);
            grid.push(((point.coord(d) - t.lower()) / t.stride()) as usize);
        }
        Ok(grid)
    }

    /// Whether global processor `id` belongs to the view.
    pub fn contains(&self, id: ProcId) -> bool {
        self.array
            .point_of(id)
            .map(|p| self.section.contains(&p))
            .unwrap_or(false)
    }

    /// All global processor ids of the view, in column-major grid order.
    pub fn procs(&self) -> Vec<ProcId> {
        self.section
            .iter()
            .map(|p| self.array.proc_at(&p).expect("section within array"))
            .collect()
    }

    /// A 1-D flattening of the view: the same processors viewed as a linear
    /// grid, used when a single distributed dimension is mapped onto a
    /// multi-dimensional processor structure (e.g. `DISTRIBUTE B1 :: (BLOCK)`
    /// with `PROCESSORS R(1:M,1:M)` in the paper's Example 3).
    pub fn flattened(&self) -> ProcessorView {
        // Build a fresh linear processor array whose ids alias the view's
        // processors; callers translate through `procs()`.
        let procs = self.procs();
        let array = Arc::new(ProcessorArray::new(
            format!("{}_flat", self.array.name()),
            IndexDomain::d1(procs.len()),
        ));
        array.full_view()
    }
}

impl fmt::Display for ProcessorView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.array.name(), self.section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vf_index::Triplet;

    #[test]
    fn linear_array_ids() {
        let p = Arc::new(ProcessorArray::linear(4));
        assert_eq!(p.num_procs(), 4);
        assert_eq!(p.rank(), 1);
        assert_eq!(p.proc_at(&Point::d1(1)).unwrap(), ProcId(0));
        assert_eq!(p.proc_at(&Point::d1(4)).unwrap(), ProcId(3));
        assert_eq!(p.point_of(ProcId(2)).unwrap(), Point::d1(3));
        assert!(p.proc_at(&Point::d1(5)).is_err());
    }

    #[test]
    fn grid_ids_are_column_major() {
        let r = Arc::new(ProcessorArray::grid2d(2, 2));
        assert_eq!(r.proc_at(&Point::d2(1, 1)).unwrap(), ProcId(0));
        assert_eq!(r.proc_at(&Point::d2(2, 1)).unwrap(), ProcId(1));
        assert_eq!(r.proc_at(&Point::d2(1, 2)).unwrap(), ProcId(2));
        assert_eq!(r.proc_at(&Point::d2(2, 2)).unwrap(), ProcId(3));
        assert_eq!(r.to_string(), "R[1:2, 1:2]");
    }

    #[test]
    fn full_view_roundtrip() {
        let r = Arc::new(ProcessorArray::grid2d(3, 2));
        let v = r.full_view();
        assert_eq!(v.num_procs(), 6);
        assert_eq!(v.grid_extents(), vec![3, 2]);
        for (i, id) in v.procs().into_iter().enumerate() {
            assert_eq!(id, ProcId(i));
            let g = v.grid_of(id).unwrap();
            assert_eq!(v.proc_at_grid(&g).unwrap(), id);
            assert!(v.contains(id));
        }
        assert!(!v.contains(ProcId(6)));
    }

    #[test]
    fn sub_view_selects_processors() {
        let r = Arc::new(ProcessorArray::grid2d(4, 4));
        // Select the second column of the grid: R(1:4, 2).
        let section =
            Section::new(vec![Triplet::full(r.domain().dim(0)), Triplet::single(2)]).unwrap();
        let v = ProcessorView::new(Arc::clone(&r), section).unwrap();
        assert_eq!(v.num_procs(), 4);
        let ids = v.procs();
        assert_eq!(ids, vec![ProcId(4), ProcId(5), ProcId(6), ProcId(7)]);
        assert_eq!(v.grid_of(ProcId(5)).unwrap(), vec![1, 0]);
        assert!(v.grid_of(ProcId(0)).is_err());
    }

    #[test]
    fn view_rejects_out_of_domain_sections() {
        let r = Arc::new(ProcessorArray::grid2d(2, 2));
        let section =
            Section::new(vec![Triplet::new(1, 3, 1).unwrap(), Triplet::single(1)]).unwrap();
        assert!(ProcessorView::new(r, section).is_err());
    }

    #[test]
    fn flattened_view_has_linear_shape() {
        let v = ProcessorView::grid2d(2, 3);
        let flat = v.flattened();
        assert_eq!(flat.rank(), 1);
        assert_eq!(flat.num_procs(), 6);
    }

    #[test]
    fn proc_at_grid_bounds_checked() {
        let v = ProcessorView::linear(4);
        assert!(v.proc_at_grid(&[4]).is_err());
        assert!(v.proc_at_grid(&[0, 0]).is_err());
        assert_eq!(v.proc_at_grid(&[3]).unwrap(), ProcId(3));
    }
}
