//! Alignments between arrays (paper Definition 2).

use crate::{DistError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use vf_index::{IndexDomain, Point};

/// One dimension of an alignment target: how the index of the target
/// (primary) array's dimension is computed from the source (secondary)
/// array's index tuple.
///
/// `ALIGN A2(I,J) WITH B4(I,J)` uses two [`AlignExpr::Axis`] entries with
/// scale 1 and offset 0; `ALIGN D(I,J,K) WITH C(J,I,K)` swaps the source
/// dimensions of the first two entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlignExpr {
    /// The target dimension's index is `scale * i_dim + offset`, where
    /// `i_dim` is the source array's index in dimension `dim` (0-based).
    Axis {
        /// Source dimension (0-based) feeding this target dimension.
        dim: usize,
        /// Multiplicative factor.
        scale: i64,
        /// Additive offset.
        offset: i64,
    },
    /// The target dimension's index is a constant (collapsing alignment).
    Constant(i64),
}

impl AlignExpr {
    /// An identity axis `i_dim`.
    pub fn axis(dim: usize) -> Self {
        AlignExpr::Axis {
            dim,
            scale: 1,
            offset: 0,
        }
    }

    /// A shifted axis `i_dim + offset`.
    pub fn shifted(dim: usize, offset: i64) -> Self {
        AlignExpr::Axis {
            dim,
            scale: 1,
            offset,
        }
    }
}

impl fmt::Display for AlignExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignExpr::Axis { dim, scale, offset } => {
                let var = (b'I' + (*dim as u8 % 18)) as char;
                match (scale, offset) {
                    (1, 0) => write!(f, "{var}"),
                    (1, o) if *o > 0 => write!(f, "{var}+{o}"),
                    (1, o) => write!(f, "{var}{o}"),
                    (s, 0) => write!(f, "{s}*{var}"),
                    (s, o) if *o > 0 => write!(f, "{s}*{var}+{o}"),
                    (s, o) => write!(f, "{s}*{var}{o}"),
                }
            }
            AlignExpr::Constant(c) => write!(f, "{c}"),
        }
    }
}

/// An alignment `α_A : I^A → I^B` from a source array `A` to a target array
/// `B` (paper Definition 2): corresponding elements are guaranteed to reside
/// on the same processor.
///
/// The alignment is described per *target* dimension: entry `d` computes the
/// index of `B`'s dimension `d` from the index tuple of `A`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alignment {
    source_rank: usize,
    targets: Vec<AlignExpr>,
}

impl Alignment {
    /// Creates an alignment from a source array of rank `source_rank` to a
    /// target of rank `targets.len()`.
    pub fn new(source_rank: usize, targets: Vec<AlignExpr>) -> Result<Self> {
        for t in &targets {
            if let AlignExpr::Axis { dim, scale, .. } = t {
                if *dim >= source_rank {
                    return Err(DistError::AlignmentRankMismatch {
                        expected: source_rank,
                        found: dim + 1,
                    });
                }
                if *scale == 0 {
                    return Err(DistError::AlignmentRankMismatch {
                        expected: source_rank,
                        found: *dim,
                    });
                }
            }
        }
        Ok(Self {
            source_rank,
            targets,
        })
    }

    /// The identity alignment `A(I,J,…) WITH B(I,J,…)` of the given rank —
    /// what the paper's `CONNECT A2(I,J) WITH B4(I,J)` declares.
    pub fn identity(rank: usize) -> Self {
        Self {
            source_rank: rank,
            targets: (0..rank).map(AlignExpr::axis).collect(),
        }
    }

    /// A pure permutation alignment: target dimension `d` takes the source
    /// dimension `perm[d]`; e.g. `ALIGN D(I,J,K) WITH C(J,I,K)` is
    /// `permutation(&[1, 0, 2])`.
    pub fn permutation(perm: &[usize]) -> Result<Self> {
        Self::new(
            perm.len(),
            perm.iter().map(|&d| AlignExpr::axis(d)).collect(),
        )
    }

    /// The transpose alignment for 2-D arrays.
    pub fn transpose2d() -> Self {
        Self::permutation(&[1, 0]).expect("valid permutation")
    }

    /// Rank of the source (secondary) array.
    pub fn source_rank(&self) -> usize {
        self.source_rank
    }

    /// Rank of the target (primary) array.
    pub fn target_rank(&self) -> usize {
        self.targets.len()
    }

    /// The per-target-dimension expressions.
    pub fn targets(&self) -> &[AlignExpr] {
        &self.targets
    }

    /// Maps a source-array index tuple to the corresponding target-array
    /// index tuple.
    pub fn map(&self, source: &Point) -> Result<Point> {
        if source.rank() != self.source_rank {
            return Err(DistError::AlignmentRankMismatch {
                expected: self.source_rank,
                found: source.rank(),
            });
        }
        let coords: Vec<i64> = self
            .targets
            .iter()
            .map(|t| match t {
                AlignExpr::Axis { dim, scale, offset } => scale * source.coord(*dim) + offset,
                AlignExpr::Constant(c) => *c,
            })
            .collect();
        Ok(Point::new(&coords)?)
    }

    /// Verifies that every point of `source_domain` maps into
    /// `target_domain` (cheaply, by checking the domain corners, which is
    /// sufficient for affine per-dimension maps).
    pub fn check_domains(
        &self,
        source_domain: &IndexDomain,
        target_domain: &IndexDomain,
    ) -> Result<()> {
        if source_domain.rank() != self.source_rank {
            return Err(DistError::AlignmentRankMismatch {
                expected: self.source_rank,
                found: source_domain.rank(),
            });
        }
        if target_domain.rank() != self.target_rank() {
            return Err(DistError::AlignmentRankMismatch {
                expected: self.target_rank(),
                found: target_domain.rank(),
            });
        }
        // Affine maps attain their extrema at domain corners: check all 2^r corners.
        let rank = source_domain.rank();
        for corner in 0..(1usize << rank) {
            let coords: Vec<i64> = (0..rank)
                .map(|d| {
                    if corner & (1 << d) == 0 {
                        source_domain.dim(d).lower()
                    } else {
                        source_domain.dim(d).upper()
                    }
                })
                .collect();
            let p = Point::new(&coords)?;
            let q = self.map(&p)?;
            if !target_domain.contains(&q) {
                return Err(DistError::AlignmentOutOfDomain {
                    point: q.to_string(),
                });
            }
        }
        Ok(())
    }

    /// If the alignment is a pure dimension permutation (each target
    /// dimension reads a distinct source dimension with scale 1 and offset
    /// 0, and every source dimension is read exactly once), returns the
    /// permutation `perm` with `target_dim d ← source_dim perm[d]`.
    pub fn as_permutation(&self) -> Option<Vec<usize>> {
        if self.target_rank() != self.source_rank {
            return None;
        }
        let mut seen = vec![false; self.source_rank];
        let mut perm = Vec::with_capacity(self.targets.len());
        for t in &self.targets {
            match t {
                AlignExpr::Axis {
                    dim,
                    scale: 1,
                    offset: 0,
                } if !seen[*dim] => {
                    seen[*dim] = true;
                    perm.push(*dim);
                }
                _ => return None,
            }
        }
        Some(perm)
    }
}

impl fmt::Display for Alignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITH (")?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_alignment() {
        let a = Alignment::identity(2);
        assert_eq!(a.map(&Point::d2(3, 4)).unwrap(), Point::d2(3, 4));
        assert_eq!(a.as_permutation(), Some(vec![0, 1]));
        assert_eq!(a.source_rank(), 2);
        assert_eq!(a.target_rank(), 2);
    }

    #[test]
    fn example1_transpose() {
        // ALIGN D(I,J,K) WITH C(J,I,K): the C index of D(i,j,k) is (j,i,k).
        let a = Alignment::permutation(&[1, 0, 2]).unwrap();
        assert_eq!(a.map(&Point::d3(1, 2, 3)).unwrap(), Point::d3(2, 1, 3));
        assert_eq!(a.as_permutation(), Some(vec![1, 0, 2]));
    }

    #[test]
    fn shifted_alignment_is_not_a_permutation() {
        let a = Alignment::new(1, vec![AlignExpr::shifted(0, 2)]).unwrap();
        assert_eq!(a.map(&Point::d1(5)).unwrap(), Point::d1(7));
        assert!(a.as_permutation().is_none());
    }

    #[test]
    fn collapsing_alignment() {
        // Align a 1-D array with row 3 of a 2-D array: A(I) WITH B(3, I).
        let a = Alignment::new(1, vec![AlignExpr::Constant(3), AlignExpr::axis(0)]).unwrap();
        assert_eq!(a.map(&Point::d1(7)).unwrap(), Point::d2(3, 7));
        assert!(a.as_permutation().is_none());
        assert_eq!(a.target_rank(), 2);
    }

    #[test]
    fn invalid_alignments_rejected() {
        assert!(Alignment::new(1, vec![AlignExpr::axis(1)]).is_err());
        assert!(Alignment::new(
            1,
            vec![AlignExpr::Axis {
                dim: 0,
                scale: 0,
                offset: 0
            }]
        )
        .is_err());
        let a = Alignment::identity(2);
        assert!(a.map(&Point::d1(1)).is_err());
    }

    #[test]
    fn domain_checking() {
        let a = Alignment::new(1, vec![AlignExpr::shifted(0, 5)]).unwrap();
        let src = IndexDomain::d1(10);
        let big = IndexDomain::of_bounds(&[(1, 15)]).unwrap();
        let small = IndexDomain::d1(10);
        assert!(a.check_domains(&src, &big).is_ok());
        assert!(a.check_domains(&src, &small).is_err());
        // Rank mismatches are reported.
        assert!(a.check_domains(&IndexDomain::d2(2, 2), &big).is_err());
        assert!(Alignment::identity(2)
            .check_domains(&IndexDomain::d2(4, 4), &IndexDomain::d1(4))
            .is_err());
    }

    #[test]
    fn display() {
        let a = Alignment::permutation(&[1, 0]).unwrap();
        assert_eq!(a.to_string(), "WITH (J, I)");
        let b = Alignment::new(1, vec![AlignExpr::shifted(0, -1), AlignExpr::Constant(2)]).unwrap();
        assert_eq!(b.to_string(), "WITH (I-1, 2)");
    }
}
