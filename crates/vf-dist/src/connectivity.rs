//! Access connectivity for irregular (INDIRECT) halo derivation.
//!
//! The PARTI runtime the paper builds on derives the halo ("ghost") set of
//! an irregularly distributed array not from geometry — there is none —
//! but from the *access pattern*: a processor needs a copy of every
//! off-processor element its owned elements reference through the mesh
//! connectivity.  [`Connectivity`] is that pattern in evaluated form: a
//! validated CSR adjacency over global column-major offsets, shared
//! immutably (`Arc`) between the partitioners that produce mapping arrays
//! from it and the runtime planners that derive incremental communication
//! schedules from it.
//!
//! Like [`crate::IndirectMap`], a connectivity carries a precomputed
//! 64-bit [`Connectivity::fingerprint`] so that schedule caches can key on
//! (distribution fingerprint, connectivity fingerprint) in O(1) regardless
//! of the mesh size.

use crate::{DistError, Result};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A validated CSR adjacency over the global (column-major linearised)
/// offsets of an index domain: `neighbors(u)` are the offsets element `u`
/// reads in one sweep step.
///
/// The structure is immutable once built; edges need not be symmetric
/// (`u → v` does not imply `v → u`) and self-edges are allowed but
/// contribute nothing to a halo (an element is always local to its owner).
#[derive(Debug, Clone)]
pub struct Connectivity {
    /// CSR row pointers, length `num_nodes() + 1`.
    xadj: Vec<u32>,
    /// CSR adjacency: global offsets referenced by each node.
    adjncy: Vec<u32>,
    /// 64-bit structural fingerprint of the whole CSR.
    fingerprint: u64,
}

impl Connectivity {
    /// Builds a connectivity from CSR arrays over global offsets.
    ///
    /// # Errors
    /// [`DistError::InvalidConnectivity`] when the row pointers are empty,
    /// non-monotone, do not end at `adjncy.len()`, or an adjacency entry
    /// names an offset outside `0..num_nodes`.
    pub fn from_csr(xadj: Vec<usize>, adjncy: Vec<usize>) -> Result<Self> {
        if xadj.is_empty() {
            return Err(DistError::InvalidConnectivity {
                reason: "row-pointer array is empty".into(),
            });
        }
        if xadj[0] != 0 || *xadj.last().expect("non-empty") != adjncy.len() {
            return Err(DistError::InvalidConnectivity {
                reason: format!(
                    "row pointers must run from 0 to adjncy.len() = {}, got {}..{}",
                    adjncy.len(),
                    xadj[0],
                    xadj.last().expect("non-empty")
                ),
            });
        }
        if xadj.windows(2).any(|w| w[0] > w[1]) {
            return Err(DistError::InvalidConnectivity {
                reason: "row pointers are not monotone".into(),
            });
        }
        let n = xadj.len() - 1;
        if let Some(&bad) = adjncy.iter().find(|&&v| v >= n) {
            return Err(DistError::InvalidConnectivity {
                reason: format!("adjacency names offset {bad} but there are only {n} elements"),
            });
        }
        // The CSR is stored as u32: reject sizes that would silently
        // truncate.  (Adjacency entries are < n and row pointers are
        // <= adjncy.len(), so these two bounds cover every stored value.)
        if n > u32::MAX as usize || adjncy.len() > u32::MAX as usize {
            return Err(DistError::InvalidConnectivity {
                reason: format!(
                    "{n} elements / {} edges exceed the u32 storage range",
                    adjncy.len()
                ),
            });
        }
        let xadj: Vec<u32> = xadj.into_iter().map(|x| x as u32).collect();
        let adjncy: Vec<u32> = adjncy.into_iter().map(|x| x as u32).collect();
        let mut h = DefaultHasher::new();
        xadj.hash(&mut h);
        adjncy.hash(&mut h);
        Ok(Self {
            xadj,
            adjncy,
            fingerprint: h.finish(),
        })
    }

    /// The implicit connectivity of a regular 1-D stencil reading up to
    /// `lo` elements below and `hi` elements above each offset — what a
    /// width-`(lo, hi)` overlap declaration means on a one-dimensional
    /// array, expressed as explicit edges so irregular layouts can serve
    /// it.  Widths are clamped to `n - 1` (no offset can reach further),
    /// so the materialised edge count is `O(n · min(lo + hi, n))`.
    pub fn chain(n: usize, lo: usize, hi: usize) -> Result<Self> {
        let lo = lo.min(n.saturating_sub(1));
        let hi = hi.min(n.saturating_sub(1));
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(n.saturating_mul(lo + hi));
        xadj.push(0usize);
        for u in 0..n {
            for v in u.saturating_sub(lo)..u {
                adjncy.push(v);
            }
            for v in u + 1..=(u + hi).min(n - 1) {
                adjncy.push(v);
            }
            xadj.push(adjncy.len());
        }
        Self::from_csr(xadj, adjncy)
    }

    /// Number of elements (CSR rows) covered.
    pub fn num_nodes(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len()
    }

    /// The global offsets element `u` references.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjncy[self.xadj[u] as usize..self.xadj[u + 1] as usize]
            .iter()
            .map(|&v| v as usize)
    }

    /// The 64-bit structural fingerprint: two connectivities with the same
    /// fingerprint describe (up to hash collision) the same edge set —
    /// the cache-key half a halo schedule contributes alongside the
    /// distribution fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Heap bytes held by the CSR arrays.
    pub fn estimated_bytes(&self) -> usize {
        (self.xadj.len() + self.adjncy.len()) * std::mem::size_of::<u32>()
    }
}

impl PartialEq for Connectivity {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.xadj == other.xadj
            && self.adjncy == other.adjncy
    }
}

impl Eq for Connectivity {}

impl Hash for Connectivity {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.fingerprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_validation_accepts_and_rejects() {
        let c = Connectivity::from_csr(vec![0, 2, 3, 3], vec![1, 2, 0]).unwrap();
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.neighbors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.neighbors(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(c.neighbors(2).count(), 0);
        assert!(c.estimated_bytes() >= 7 * 4);

        assert!(matches!(
            Connectivity::from_csr(vec![], vec![]),
            Err(DistError::InvalidConnectivity { .. })
        ));
        assert!(matches!(
            Connectivity::from_csr(vec![0, 2], vec![0]),
            Err(DistError::InvalidConnectivity { .. })
        ));
        assert!(matches!(
            Connectivity::from_csr(vec![0, 2, 1], vec![0, 0]),
            Err(DistError::InvalidConnectivity { .. })
        ));
        assert!(matches!(
            Connectivity::from_csr(vec![0, 1], vec![7]),
            Err(DistError::InvalidConnectivity { .. })
        ));
    }

    #[test]
    fn chain_matches_stencil_widths() {
        let c = Connectivity::chain(5, 1, 2).unwrap();
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.neighbors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(c.neighbors(2).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(c.neighbors(4).collect::<Vec<_>>(), vec![3]);
        // A zero-width chain has no edges at all.
        let empty = Connectivity::chain(4, 0, 0).unwrap();
        assert_eq!(empty.num_edges(), 0);
        // Widths beyond the domain clamp (no overflow, no blow-up beyond
        // the all-pairs stencil): usize::MAX widths equal n-1 widths.
        let all = Connectivity::chain(5, usize::MAX, usize::MAX).unwrap();
        assert_eq!(all, Connectivity::chain(5, 4, 4).unwrap());
        assert_eq!(all.num_edges(), 5 * 4);
        assert_eq!(
            Connectivity::chain(1, usize::MAX, usize::MAX)
                .unwrap()
                .num_edges(),
            0
        );
        // A zero-element chain is the valid empty connectivity.
        assert_eq!(Connectivity::chain(0, 1, 1).unwrap().num_nodes(), 0);
    }

    #[test]
    fn fingerprints_identify_edge_sets() {
        let a = Connectivity::from_csr(vec![0, 1, 2], vec![1, 0]).unwrap();
        let b = Connectivity::from_csr(vec![0, 1, 2], vec![1, 0]).unwrap();
        let c = Connectivity::from_csr(vec![0, 0, 2], vec![1, 0]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a, c);
    }
}
