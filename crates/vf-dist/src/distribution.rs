//! Evaluated distributions: a distribution type applied to an array index
//! domain and a processor view (paper Definition 1), plus the `CONSTRUCT`
//! operation used for connected (aligned) arrays.

use crate::{Alignment, DistError, DistType, ProcId, ProcessorView, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use vf_index::{DimRange, IndexDomain, Point};

/// The shape of one processor's local storage for a distributed array:
/// per-dimension local extents for regular distributions, or a flat element
/// count for alignment-derived (translation-table) distributions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalLayout {
    extents: Vec<usize>,
    size: usize,
}

impl LocalLayout {
    fn new(extents: Vec<usize>) -> Self {
        let size = extents.iter().product();
        Self { extents, size }
    }

    /// Per-dimension local extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of locally stored elements.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// How the distributed array dimensions are mapped onto processors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Kind {
    /// A regular distribution: per-dimension closed-form arithmetic.
    Regular {
        /// Extent of each processor-grid dimension used by the distribution.
        grid_extents: Vec<usize>,
        /// `grid_map[i]` is the grid dimension that the `i`-th *distributed*
        /// array dimension maps to.
        grid_map: Vec<usize>,
    },
    /// No dimension is distributed: the array is replicated on every
    /// processor of the view.
    Replicated,
    /// An alignment-derived distribution realised through a translation
    /// table (the paper's §3.2.1: "for certain complex distributions, a
    /// pointer to a translation table is required").
    Aligned {
        /// Owner of each element, indexed by column-major global offset.
        owners: Vec<ProcId>,
        /// Local offset of each element on its owner, same indexing.
        local_offsets: Vec<usize>,
        /// For each processor id, the global offsets it owns, in local
        /// storage order.
        local_to_global: Vec<Vec<usize>>,
    },
}

/// A distribution `δ_A : I^A → P(I^R)` of an array over a processor view,
/// together with the local addressing information (`loc_map`, `segment`)
/// the Vienna Fortran Engine keeps per processor (paper §3.2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    dist_type: DistType,
    domain: IndexDomain,
    procs: ProcessorView,
    /// Processor ids of the view in column-major grid order (the order used
    /// for grid-linearisation lookups).
    proc_ids: Vec<ProcId>,
    kind: Kind,
}

impl Distribution {
    /// Applies `dist_type` to an array with index domain `domain`, targeting
    /// the processors of `procs`.
    ///
    /// Mapping rules (paper §2.2): the distributed (non-`:`) dimensions are
    /// matched, in order, with the dimensions of the processor view.  As a
    /// convenience mirroring the paper's Example 3 (`DISTRIBUTE B1 ::
    /// (BLOCK)` with 2-D `R`), a *single* distributed dimension may target a
    /// multi-dimensional view, which is then used as a flattened 1-D
    /// arrangement.
    pub fn new(dist_type: DistType, domain: IndexDomain, procs: ProcessorView) -> Result<Self> {
        dist_type.check_rank(domain.rank())?;
        let ddims = dist_type.distributed_dims();
        let proc_ids = procs.procs();

        if ddims.is_empty() {
            return Ok(Self {
                dist_type,
                domain,
                procs,
                proc_ids,
                kind: Kind::Replicated,
            });
        }

        let (grid_extents, grid_map) = if ddims.len() == procs.rank() {
            (procs.grid_extents(), (0..ddims.len()).collect::<Vec<_>>())
        } else if ddims.len() == 1 {
            (vec![procs.num_procs()], vec![0])
        } else if procs.rank() == 1 {
            // A multi-dimensional distribution onto the default linear
            // arrangement: factor the processors into a balanced grid, the
            // way data-parallel compilers shape the default processor
            // arrangement.
            (
                factor_grid(procs.num_procs(), ddims.len()),
                (0..ddims.len()).collect::<Vec<_>>(),
            )
        } else {
            return Err(DistError::ProcessorRankMismatch {
                distributed_dims: ddims.len(),
                proc_rank: procs.rank(),
            });
        };

        for (i, &d) in ddims.iter().enumerate() {
            let nprocs = grid_extents[grid_map[i]];
            dist_type.dim(d).validate(domain.extent(d), nprocs)?;
        }

        Ok(Self {
            dist_type,
            domain,
            procs,
            proc_ids,
            kind: Kind::Regular {
                grid_extents,
                grid_map,
            },
        })
    }

    /// The distribution type.
    pub fn dist_type(&self) -> &DistType {
        &self.dist_type
    }

    /// The array index domain this distribution applies to.
    pub fn domain(&self) -> &IndexDomain {
        &self.domain
    }

    /// The target processor view.
    pub fn procs(&self) -> &ProcessorView {
        &self.procs
    }

    /// Number of processors in the target view.
    pub fn num_procs(&self) -> usize {
        self.proc_ids.len()
    }

    /// The processor ids of the target view, in grid order.
    pub fn proc_ids(&self) -> &[ProcId] {
        &self.proc_ids
    }

    /// Whether the array is replicated (no dimension distributed).
    pub fn is_replicated(&self) -> bool {
        matches!(self.kind, Kind::Replicated)
    }

    /// Whether this distribution was derived through a non-trivial alignment
    /// and therefore uses a translation table for local addressing.
    pub fn uses_translation_table(&self) -> bool {
        matches!(self.kind, Kind::Aligned { .. })
    }

    /// Whether two distributions place every element of their (identical)
    /// index domains on the same processors.
    pub fn same_mapping(&self, other: &Distribution) -> bool {
        if self.domain != other.domain {
            return false;
        }
        if self.dist_type == other.dist_type && self.procs == other.procs {
            return true;
        }
        // Fall back to an element-wise comparison for derived distributions.
        self.domain
            .iter()
            .all(|p| self.owner(&p).ok().map(|o| o.0) == other.owner(&p).ok().map(|o| o.0))
    }

    fn offsets_of(&self, point: &Point) -> Result<Vec<usize>> {
        self.domain.check(point)?;
        Ok((0..self.domain.rank())
            .map(|d| (point.coord(d) - self.domain.dim(d).lower()) as usize)
            .collect())
    }

    fn grid_linear(&self, grid: &[usize], grid_extents: &[usize]) -> usize {
        let mut lin = 0usize;
        let mut stride = 1usize;
        for (g, e) in grid.iter().zip(grid_extents.iter()) {
            lin += g * stride;
            stride *= e;
        }
        lin
    }

    /// The grid coordinates (within this distribution's processor grid) of
    /// processor `proc`, if it belongs to the view.
    fn proc_grid_coords(&self, proc: ProcId, grid_extents: &[usize]) -> Result<Vec<usize>> {
        let pos =
            self.proc_ids
                .iter()
                .position(|&p| p == proc)
                .ok_or(DistError::NoSuchProcessor {
                    proc: proc.0,
                    count: self.proc_ids.len(),
                })?;
        // proc_ids are stored in column-major grid order, so delinearise.
        let mut rem = pos;
        let mut coords = Vec::with_capacity(grid_extents.len());
        for &e in grid_extents {
            coords.push(rem % e);
            rem /= e;
        }
        Ok(coords)
    }

    /// The owner (paper: the processor that stores the element in its local
    /// memory) of the array element at `point`.  For replicated arrays the
    /// first processor of the view is reported; use
    /// [`Distribution::owners`] for the full owner set.
    pub fn owner(&self, point: &Point) -> Result<ProcId> {
        match &self.kind {
            Kind::Replicated => {
                self.domain.check(point)?;
                Ok(self.proc_ids[0])
            }
            Kind::Aligned { owners, .. } => {
                let lin = self.domain.linearize(point)?;
                Ok(owners[lin])
            }
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let offsets = self.offsets_of(point)?;
                let ddims = self.dist_type.distributed_dims();
                let mut grid = vec![0usize; grid_extents.len()];
                for (i, &d) in ddims.iter().enumerate() {
                    let nprocs = grid_extents[grid_map[i]];
                    grid[grid_map[i]] =
                        self.dist_type
                            .dim(d)
                            .owner(offsets[d], self.domain.extent(d), nprocs);
                }
                let lin = self.grid_linear(&grid, grid_extents);
                Ok(self.proc_ids[lin])
            }
        }
    }

    /// The full owner set of the element at `point` (more than one processor
    /// only for replicated arrays).
    pub fn owners(&self, point: &Point) -> Result<Vec<ProcId>> {
        match &self.kind {
            Kind::Replicated => {
                self.domain.check(point)?;
                Ok(self.proc_ids.clone())
            }
            _ => Ok(vec![self.owner(point)?]),
        }
    }

    /// Whether the element at `point` is stored locally on `proc`.
    pub fn is_local(&self, proc: ProcId, point: &Point) -> bool {
        match &self.kind {
            Kind::Replicated => self.domain.contains(point) && self.proc_ids.contains(&proc),
            _ => self.owner(point).map(|o| o == proc).unwrap_or(false),
        }
    }

    /// The local storage layout of `proc` (the basis of the VFE's dynamic
    /// memory management, §3.2).
    pub fn layout(&self, proc: ProcId) -> LocalLayout {
        match &self.kind {
            Kind::Replicated => {
                if self.proc_ids.contains(&proc) {
                    LocalLayout::new(self.domain.extents())
                } else {
                    LocalLayout::new(vec![0])
                }
            }
            Kind::Aligned {
                local_to_global, ..
            } => {
                let count = local_to_global.get(proc.0).map(|v| v.len()).unwrap_or(0);
                LocalLayout::new(vec![count])
            }
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let Ok(grid) = self.proc_grid_coords(proc, grid_extents) else {
                    return LocalLayout::new(vec![0]);
                };
                let ddims = self.dist_type.distributed_dims();
                let mut extents = Vec::with_capacity(self.domain.rank());
                for d in 0..self.domain.rank() {
                    let n = self.domain.extent(d);
                    if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        extents.push(self.dist_type.dim(d).local_count(
                            grid[gdim],
                            n,
                            grid_extents[gdim],
                        ));
                    } else {
                        extents.push(n);
                    }
                }
                LocalLayout::new(extents)
            }
        }
    }

    /// Number of elements stored locally on `proc`.
    pub fn local_size(&self, proc: ProcId) -> usize {
        self.layout(proc).size()
    }

    /// The `loc_map` access function of §3.2.1: the offset of the element at
    /// global `point` within the local memory of `proc`.
    ///
    /// # Errors
    /// [`DistError::NotLocal`] if `proc` does not own the element.
    pub fn loc_map(&self, proc: ProcId, point: &Point) -> Result<usize> {
        match &self.kind {
            Kind::Replicated => {
                if !self.proc_ids.contains(&proc) {
                    return Err(DistError::NoSuchProcessor {
                        proc: proc.0,
                        count: self.proc_ids.len(),
                    });
                }
                Ok(self.domain.linearize(point)?)
            }
            Kind::Aligned {
                owners,
                local_offsets,
                ..
            } => {
                let lin = self.domain.linearize(point)?;
                if owners[lin] != proc {
                    return Err(DistError::NotLocal {
                        proc: proc.0,
                        point: point.to_string(),
                    });
                }
                Ok(local_offsets[lin])
            }
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let offsets = self.offsets_of(point)?;
                let grid = self.proc_grid_coords(proc, grid_extents)?;
                let ddims = self.dist_type.distributed_dims();
                let mut local = 0usize;
                let mut stride = 1usize;
                #[allow(clippy::needless_range_loop)] // `d` indexes several parallel tables
                for d in 0..self.domain.rank() {
                    let n = self.domain.extent(d);
                    let (l, count) = if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        let nprocs = grid_extents[gdim];
                        let dd = self.dist_type.dim(d);
                        if dd.owner(offsets[d], n, nprocs) != grid[gdim] {
                            return Err(DistError::NotLocal {
                                proc: proc.0,
                                point: point.to_string(),
                            });
                        }
                        (
                            dd.local_offset(offsets[d], n, nprocs),
                            dd.local_count(grid[gdim], n, nprocs),
                        )
                    } else {
                        (offsets[d], n)
                    };
                    local += l * stride;
                    stride *= count;
                }
                Ok(local)
            }
        }
    }

    /// The global index tuple stored at local offset `local` on `proc` — the
    /// inverse of [`Distribution::loc_map`].
    pub fn global_at(&self, proc: ProcId, local: usize) -> Result<Point> {
        match &self.kind {
            Kind::Replicated => Ok(self.domain.delinearize(local)?),
            Kind::Aligned {
                local_to_global, ..
            } => {
                let table = local_to_global
                    .get(proc.0)
                    .ok_or(DistError::NoSuchProcessor {
                        proc: proc.0,
                        count: self.proc_ids.len(),
                    })?;
                let lin = *table.get(local).ok_or(DistError::NotLocal {
                    proc: proc.0,
                    point: format!("local offset {local}"),
                })?;
                Ok(self.domain.delinearize(lin)?)
            }
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let grid = self.proc_grid_coords(proc, grid_extents)?;
                let layout = self.layout(proc);
                if local >= layout.size() {
                    return Err(DistError::NotLocal {
                        proc: proc.0,
                        point: format!("local offset {local}"),
                    });
                }
                let ddims = self.dist_type.distributed_dims();
                let mut rem = local;
                let mut coords = Vec::with_capacity(self.domain.rank());
                for d in 0..self.domain.rank() {
                    let count = layout.extents()[d];
                    let l = rem % count.max(1);
                    rem /= count.max(1);
                    let n = self.domain.extent(d);
                    let o = if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        self.dist_type
                            .dim(d)
                            .global_offset(grid[gdim], l, n, grid_extents[gdim])
                    } else {
                        l
                    };
                    coords.push(self.domain.dim(d).lower() + o as i64);
                }
                Ok(Point::new(&coords)?)
            }
        }
    }

    /// All global points owned by `proc`, in local storage order.
    pub fn local_points(&self, proc: ProcId) -> Vec<Point> {
        let n = self.local_size(proc);
        (0..n)
            .map(|l| self.global_at(proc, l).expect("local offset in range"))
            .collect()
    }

    /// The contiguous rectangular global sub-domain owned by `proc`, when the
    /// local element set is such a rectangle (always the case for `BLOCK`,
    /// general block and `:` dimensions); `None` for scattered (cyclic or
    /// translation-table) local sets.  This is the `segment` descriptor
    /// component of §3.2.1.
    pub fn local_segment(&self, proc: ProcId) -> Option<IndexDomain> {
        match &self.kind {
            Kind::Replicated => {
                if self.proc_ids.contains(&proc) {
                    Some(self.domain.clone())
                } else {
                    None
                }
            }
            Kind::Aligned { .. } => None,
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let grid = self.proc_grid_coords(proc, grid_extents).ok()?;
                let ddims = self.dist_type.distributed_dims();
                let mut dims = Vec::with_capacity(self.domain.rank());
                for d in 0..self.domain.rank() {
                    let n = self.domain.extent(d);
                    let lower = self.domain.dim(d).lower();
                    if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        let seg =
                            self.dist_type
                                .dim(d)
                                .segment(grid[gdim], n, grid_extents[gdim])?;
                        if seg.len == 0 {
                            dims.push(DimRange::empty_at(lower));
                        } else {
                            dims.push(
                                DimRange::new(
                                    lower + seg.start as i64,
                                    lower + (seg.start + seg.len) as i64 - 1,
                                )
                                .ok()?,
                            );
                        }
                    } else {
                        dims.push(self.domain.dim(d));
                    }
                }
                IndexDomain::new(dims).ok()
            }
        }
    }

    /// The dimensions whose local layouts *scatter* on some processor —
    /// their per-dimension segment does not exist for every processor
    /// coordinate, so no processor-rectangle description of the local set
    /// can name them.  Empty for replicated layouts and for layouts where
    /// [`Distribution::local_segment`] exists everywhere; alignment-derived
    /// layouts scatter as a whole and report every dimension.  This is what
    /// a structured non-contiguous-layout error should name.
    pub fn scattered_dims(&self) -> Vec<usize> {
        match &self.kind {
            Kind::Replicated => Vec::new(),
            Kind::Aligned { .. } => (0..self.domain.rank()).collect(),
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let ddims = self.dist_type.distributed_dims();
                let mut out = Vec::new();
                for (i, &d) in ddims.iter().enumerate() {
                    let n = self.domain.extent(d);
                    let procs_in_dim = grid_extents[grid_map[i]];
                    if (0..procs_in_dim)
                        .any(|c| self.dist_type.dim(d).segment(c, n, procs_in_dim).is_none())
                    {
                        out.push(d);
                    }
                }
                out
            }
        }
    }

    /// A cheap structural fingerprint of the distribution: two
    /// distributions with the same fingerprint place every element on the
    /// same processor, up to 64-bit hash collisions.  A collision would
    /// make two *different* distributions indistinguishable to every
    /// fingerprint consumer (cache keys and execution-time re-validation
    /// alike), silently reusing a plan built for the other distribution —
    /// with `DefaultHasher` over the full structural state the probability
    /// is ~2⁻⁶⁴ per pair, accepted as the price of O(1) keys; callers that
    /// cannot tolerate it should compare distributions structurally.
    ///
    /// The fingerprint covers the distribution type, the index domain, the
    /// processor ids of the target view and — for translation-table
    /// distributions — the full owner vector.  It is the cache key of the
    /// runtime's `PlanCache` (paper §3.2: PARTI schedule reuse requires
    /// recognising that the distribution has not changed).
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.dist_type.hash(&mut h);
        self.domain.hash(&mut h);
        self.proc_ids.hash(&mut h);
        match &self.kind {
            Kind::Replicated => 0u8.hash(&mut h),
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                1u8.hash(&mut h);
                grid_extents.hash(&mut h);
                grid_map.hash(&mut h);
            }
            Kind::Aligned { owners, .. } => {
                2u8.hash(&mut h);
                owners.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Estimated resident size of the distribution in bytes: the struct
    /// plus its heap payload.  Regular and replicated distributions are a
    /// few dozen bytes; alignment-derived ones carry O(N) translation
    /// tables — consumers that keep clones alive (the runtime's plan
    /// cache) must account for the difference.
    pub fn estimated_bytes(&self) -> usize {
        use std::mem::size_of;
        let kind = match &self.kind {
            Kind::Replicated => 0,
            Kind::Regular {
                grid_extents,
                grid_map,
            } => (grid_extents.len() + grid_map.len()) * size_of::<usize>(),
            Kind::Aligned {
                owners,
                local_offsets,
                local_to_global,
            } => {
                owners.len() * size_of::<ProcId>()
                    + local_offsets.len() * size_of::<usize>()
                    + local_to_global
                        .iter()
                        .map(|v| size_of::<Vec<usize>>() + v.len() * size_of::<usize>())
                        .sum::<usize>()
            }
        };
        size_of::<Self>() + self.proc_ids.len() * size_of::<ProcId>() + kind
            // Indirect mapping arrays and general-block size lists live in
            // the distribution type; charge them per clone (conservative
            // for Arc-shared maps).
            + self.dist_type.payload_bytes()
    }

    /// The contiguous correspondences between the local storage of `proc`
    /// and global column-major offsets, in local storage order: within one
    /// [`LinearRun`] both the local offset and the global offset advance by
    /// one per element.
    ///
    /// This is the run-length-encoded form of [`Distribution::local_points`]
    /// used by the communication planner: `BLOCK`/general-block/`:` layouts
    /// produce one run per local column, cyclic layouts one run per owned
    /// block, so downstream consumers iterate runs instead of hashing
    /// individual points.
    pub fn local_linear_runs(&self, proc: ProcId) -> Vec<LinearRun> {
        let mut runs: Vec<LinearRun> = Vec::new();
        let mut push = |local: usize, global: usize| match runs.last_mut() {
            Some(run)
                if run.local_start + run.len == local && run.global_start + run.len == global =>
            {
                run.len += 1;
            }
            _ => runs.push(LinearRun {
                local_start: local,
                global_start: global,
                len: 1,
            }),
        };
        match &self.kind {
            Kind::Replicated => {
                if self.proc_ids.contains(&proc) && !self.domain.is_empty() {
                    runs.push(LinearRun {
                        local_start: 0,
                        global_start: 0,
                        len: self.domain.size(),
                    });
                }
            }
            Kind::Aligned {
                local_to_global, ..
            } => {
                if let Some(table) = local_to_global.get(proc.0) {
                    for (local, &lin) in table.iter().enumerate() {
                        push(local, lin);
                    }
                }
            }
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let Ok(grid) = self.proc_grid_coords(proc, grid_extents) else {
                    return runs;
                };
                let rank = self.domain.rank();
                let ddims = self.dist_type.distributed_dims();
                // Per dimension: the global offsets of this processor's
                // local coordinates, precomputed once.
                let mut global_of_local: Vec<Vec<usize>> = Vec::with_capacity(rank);
                let mut global_strides = Vec::with_capacity(rank);
                let mut stride = 1usize;
                for d in 0..rank {
                    let n = self.domain.extent(d);
                    let table = if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        let dd = self.dist_type.dim(d);
                        let count = dd.local_count(grid[gdim], n, grid_extents[gdim]);
                        (0..count)
                            .map(|l| dd.global_offset(grid[gdim], l, n, grid_extents[gdim]))
                            .collect()
                    } else {
                        (0..n).collect()
                    };
                    global_of_local.push(table);
                    global_strides.push(stride);
                    stride *= n;
                }
                let local_size: usize = global_of_local.iter().map(|t| t.len()).product();
                if local_size == 0 {
                    return runs;
                }
                // Walk the local index space in column-major order with an
                // odometer, accumulating the global linear offset.
                let mut coords = vec![0usize; rank];
                let mut glin: usize = (0..rank)
                    .map(|d| global_of_local[d][0] * global_strides[d])
                    .sum();
                for local in 0..local_size {
                    push(local, glin);
                    for d in 0..rank {
                        let table = &global_of_local[d];
                        if coords[d] + 1 < table.len() {
                            glin += (table[coords[d] + 1] - table[coords[d]]) * global_strides[d];
                            coords[d] += 1;
                            break;
                        }
                        glin -= (table[coords[d]] - table[0]) * global_strides[d];
                        coords[d] = 0;
                    }
                }
            }
        }
        runs
    }

    /// A precomputed owner/local-offset resolver for this distribution.
    ///
    /// [`Distribution::owner`] and [`Distribution::loc_map`] recompute
    /// grid coordinates (an `O(P)` search) and general-block prefix sums on
    /// every call; a [`Locator`] materialises per-dimension lookup tables
    /// once so the communication planner can resolve millions of elements
    /// with table reads only.
    pub fn locator(&self) -> Locator<'_> {
        Locator::new(self)
    }

    /// Builds an alignment-derived distribution directly from a closure
    /// giving the owner of every element — used by `construct` for general
    /// alignments and available for user-defined distribution functions
    /// (the paper's "interface for external distribution generators").
    pub fn from_owner_fn(
        dist_type: DistType,
        domain: IndexDomain,
        procs: ProcessorView,
        mut owner_of: impl FnMut(&Point) -> ProcId,
    ) -> Result<Self> {
        let proc_ids = procs.procs();
        let max_proc = proc_ids.iter().map(|p| p.0).max().unwrap_or(0);
        let size = domain.size();
        let mut owners = Vec::with_capacity(size);
        let mut local_offsets = vec![0usize; size];
        let mut local_to_global: Vec<Vec<usize>> = vec![Vec::new(); max_proc + 1];
        for (lin, p) in domain.iter().enumerate() {
            let o = owner_of(&p);
            if !proc_ids.contains(&o) {
                return Err(DistError::NoSuchProcessor {
                    proc: o.0,
                    count: proc_ids.len(),
                });
            }
            owners.push(o);
            local_offsets[lin] = local_to_global[o.0].len();
            local_to_global[o.0].push(lin);
        }
        Ok(Self {
            dist_type,
            domain,
            procs,
            proc_ids,
            kind: Kind::Aligned {
                owners,
                local_offsets,
                local_to_global,
            },
        })
    }
}

/// A contiguous correspondence between local storage and global
/// column-major offsets: the `len` elements at local offsets
/// `local_start..local_start+len` on one processor are the global offsets
/// `global_start..global_start+len`, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearRun {
    /// First local offset of the run.
    pub local_start: usize,
    /// First global column-major offset of the run.
    pub global_start: usize,
    /// Number of elements in the run.
    pub len: usize,
}

enum LocMode {
    Replicated,
    Aligned,
    Regular {
        /// For each array dimension: `(owner grid coordinate, local offset)`
        /// per global offset; `None` for undistributed dimensions (owner
        /// irrelevant, local offset = global offset).
        tables: Vec<Option<(Vec<u32>, Vec<u32>)>>,
        /// For each array dimension: local element count per owner grid
        /// coordinate (a single entry holding the extent for undistributed
        /// dimensions).
        counts: Vec<Vec<u32>>,
        /// Grid dimension fed by each distributed array dimension, indexed
        /// by array dimension (`usize::MAX` for undistributed dims).
        gdim_of_dim: Vec<usize>,
        grid_extents: Vec<usize>,
    },
}

/// A precomputed owner/local-offset resolver (see
/// [`Distribution::locator`]).  Resolution is `O(rank)` table reads per
/// element with no per-element allocation or hashing — the property the
/// communication planner relies on.
pub struct Locator<'a> {
    dist: &'a Distribution,
    mode: LocMode,
}

impl<'a> Locator<'a> {
    fn new(dist: &'a Distribution) -> Self {
        let mode = match &dist.kind {
            Kind::Replicated => LocMode::Replicated,
            Kind::Aligned { .. } => LocMode::Aligned,
            Kind::Regular {
                grid_extents,
                grid_map,
            } => {
                let rank = dist.domain.rank();
                let ddims = dist.dist_type.distributed_dims();
                let mut tables = Vec::with_capacity(rank);
                let mut counts = Vec::with_capacity(rank);
                let mut gdim_of_dim = vec![usize::MAX; rank];
                #[allow(clippy::needless_range_loop)] // `d` indexes several parallel tables
                for d in 0..rank {
                    let n = dist.domain.extent(d);
                    if let Some(i) = ddims.iter().position(|&x| x == d) {
                        let gdim = grid_map[i];
                        let nprocs = grid_extents[gdim];
                        let dd = dist.dist_type.dim(d);
                        let mut owner_t = Vec::with_capacity(n);
                        let mut local_t = Vec::with_capacity(n);
                        for off in 0..n {
                            owner_t.push(dd.owner(off, n, nprocs) as u32);
                            local_t.push(dd.local_offset(off, n, nprocs) as u32);
                        }
                        counts.push(
                            (0..nprocs)
                                .map(|g| dd.local_count(g, n, nprocs) as u32)
                                .collect(),
                        );
                        gdim_of_dim[d] = gdim;
                        tables.push(Some((owner_t, local_t)));
                    } else {
                        counts.push(vec![n as u32]);
                        tables.push(None);
                    }
                }
                LocMode::Regular {
                    tables,
                    counts,
                    gdim_of_dim,
                    grid_extents: grid_extents.clone(),
                }
            }
        };
        Self { dist, mode }
    }

    /// The distribution this locator resolves against.
    pub fn dist(&self) -> &Distribution {
        self.dist
    }

    /// The owner and owner-local offset of the element at global
    /// column-major offset `lin` (which must be in range; for replicated
    /// arrays the canonical first owner is reported, as in
    /// [`Distribution::owner`]).
    pub fn locate_lin(&self, lin: usize) -> (ProcId, usize) {
        match &self.mode {
            LocMode::Replicated => (self.dist.proc_ids[0], lin),
            LocMode::Aligned => {
                let Kind::Aligned {
                    owners,
                    local_offsets,
                    ..
                } = &self.dist.kind
                else {
                    unreachable!("mode matches kind");
                };
                (owners[lin], local_offsets[lin])
            }
            LocMode::Regular {
                tables,
                counts,
                gdim_of_dim,
                grid_extents,
            } => {
                let rank = self.dist.domain.rank();
                let mut rem = lin;
                let mut grid = [0usize; 8];
                let mut local_coords = [0usize; 8];
                for d in 0..rank {
                    let n = self.dist.domain.extent(d);
                    let off = rem % n;
                    rem /= n;
                    match &tables[d] {
                        Some((owner_t, local_t)) => {
                            grid[gdim_of_dim[d]] = owner_t[off] as usize;
                            local_coords[d] = local_t[off] as usize;
                        }
                        None => local_coords[d] = off,
                    }
                }
                // Processor id: column-major grid linearisation.
                let mut plin = 0usize;
                let mut stride = 1usize;
                for (g, e) in grid[..grid_extents.len()].iter().zip(grid_extents.iter()) {
                    plin += g * stride;
                    stride *= e;
                }
                // Local offset: column-major over the owner's local extents.
                let mut local = 0usize;
                let mut lstride = 1usize;
                for d in 0..rank {
                    let count = if tables[d].is_some() {
                        counts[d][grid[gdim_of_dim[d]]] as usize
                    } else {
                        counts[d][0] as usize
                    };
                    local += local_coords[d] * lstride;
                    lstride *= count;
                }
                (self.dist.proc_ids[plin], local)
            }
        }
    }

    /// The owner and owner-local offset of the element at `point`.
    pub fn locate(&self, point: &Point) -> Result<(ProcId, usize)> {
        Ok(self.locate_lin(self.dist.domain.linearize(point)?))
    }
}

/// Factors `n` processors into `k` grid extents that are as balanced as
/// possible (product exactly `n`): prime factors are assigned, largest
/// first, to the currently smallest extent.
fn factor_grid(n: usize, k: usize) -> Vec<usize> {
    let mut dims = vec![1usize; k.max(1)];
    let mut m = n.max(1);
    let mut factors = Vec::new();
    let mut d = 2usize;
    while d * d <= m {
        while m.is_multiple_of(d) {
            factors.push(d);
            m /= d;
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let (i, _) = dims
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("dims is non-empty");
        dims[i] *= f;
    }
    dims
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} TO {}", self.dist_type, self.procs)
    }
}

/// The paper's `CONSTRUCT` operation: derives the distribution of a
/// secondary array `A` from its alignment to a primary array `B` and `B`'s
/// distribution — `δ_A(i) = δ_B(α_A(i))`.
///
/// When the alignment is a pure dimension permutation over identically
/// bounded dimensions, the result is itself a regular distribution (the
/// permuted distribution type on the same processors); otherwise a
/// translation-table distribution is built element-wise.
pub fn construct(
    alignment: &Alignment,
    base: &Distribution,
    source_domain: &IndexDomain,
) -> Result<Distribution> {
    alignment.check_domains(source_domain, base.domain())?;

    if let Some(perm) = alignment.as_permutation() {
        // perm[d] is the source (A) dimension feeding target (B) dimension d.
        // A's dimension e therefore inherits B's dimension inv[e] where
        // inv[perm[d]] = d.
        let rank = perm.len();
        let mut inv = vec![0usize; rank];
        for (d, &src) in perm.iter().enumerate() {
            inv[src] = d;
        }
        let bounds_match = (0..rank).all(|e| source_domain.dim(e) == base.domain().dim(inv[e]));
        if bounds_match {
            let a_type = DistType::new(
                (0..rank)
                    .map(|e| base.dist_type().dim(inv[e]).clone())
                    .collect(),
            );
            // Preserve the processor-grid assignment of the base: A's i-th
            // distributed dimension must land on the same grid dimension as
            // the corresponding B dimension.
            if let Kind::Regular {
                grid_extents,
                grid_map,
            } = &base.kind
            {
                let b_ddims = base.dist_type().distributed_dims();
                let a_ddims = a_type.distributed_dims();
                let mut a_grid_map = Vec::with_capacity(a_ddims.len());
                for &e in &a_ddims {
                    let b_dim = inv[e];
                    let pos = b_ddims
                        .iter()
                        .position(|&x| x == b_dim)
                        .expect("distributed dims correspond under permutation");
                    a_grid_map.push(grid_map[pos]);
                }
                return Ok(Distribution {
                    dist_type: a_type,
                    domain: source_domain.clone(),
                    procs: base.procs.clone(),
                    proc_ids: base.proc_ids.clone(),
                    kind: Kind::Regular {
                        grid_extents: grid_extents.clone(),
                        grid_map: a_grid_map,
                    },
                });
            }
            if matches!(base.kind, Kind::Replicated) {
                return Distribution::new(a_type, source_domain.clone(), base.procs.clone());
            }
        }
    }

    // General case: element-wise translation table.
    let base_clone = base.clone();
    let align = alignment.clone();
    let mut error: Option<DistError> = None;
    let dist = Distribution::from_owner_fn(
        base.dist_type().clone(),
        source_domain.clone(),
        base.procs().clone(),
        |p| {
            let target = match align.map(p) {
                Ok(t) => t,
                Err(e) => {
                    error.get_or_insert(e);
                    return base_clone.proc_ids()[0];
                }
            };
            match base_clone.owner(&target) {
                Ok(o) => o,
                Err(e) => {
                    error.get_or_insert(e);
                    base_clone.proc_ids()[0]
                }
            }
        },
    )?;
    if let Some(e) = error {
        return Err(e);
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DimDist, DimPattern};
    use proptest::prelude::*;

    fn block_1d(n: usize, p: usize) -> Distribution {
        Distribution::new(
            DistType::block1d(),
            IndexDomain::d1(n),
            ProcessorView::linear(p),
        )
        .unwrap()
    }

    /// Exhaustive consistency check used by several tests: every element has
    /// exactly one owner, loc_map/global_at round-trip, and local sizes add
    /// up to the domain size.
    fn check_distribution(dist: &Distribution) {
        let mut counts = vec![0usize; dist.proc_ids().iter().map(|p| p.0).max().unwrap() + 1];
        for point in dist.domain().clone().iter() {
            let owner = dist.owner(&point).unwrap();
            assert!(dist.is_local(owner, &point));
            let l = dist.loc_map(owner, &point).unwrap();
            assert!(l < dist.local_size(owner));
            assert_eq!(dist.global_at(owner, l).unwrap(), point);
            counts[owner.0] += 1;
            if let Some(seg) = dist.local_segment(owner) {
                assert!(seg.contains(&point));
            }
        }
        if !dist.is_replicated() {
            let total: usize = dist.proc_ids().iter().map(|&p| dist.local_size(p)).sum();
            assert_eq!(total, dist.domain().size());
            for &p in dist.proc_ids() {
                assert_eq!(counts[p.0], dist.local_size(p));
                assert_eq!(dist.local_points(p).len(), dist.local_size(p));
            }
        }
    }

    #[test]
    fn block_1d_ownership() {
        let d = block_1d(10, 3);
        check_distribution(&d);
        assert_eq!(d.owner(&Point::d1(1)).unwrap(), ProcId(0));
        assert_eq!(d.owner(&Point::d1(5)).unwrap(), ProcId(1));
        assert_eq!(d.owner(&Point::d1(10)).unwrap(), ProcId(2));
        assert_eq!(d.local_size(ProcId(0)), 4);
        assert_eq!(d.local_size(ProcId(2)), 2);
        let seg = d.local_segment(ProcId(1)).unwrap();
        assert_eq!(seg.dim(0).lower(), 5);
        assert_eq!(seg.dim(0).upper(), 8);
        assert_eq!(d.to_string(), "(BLOCK) TO P(1:3)");
    }

    #[test]
    fn cyclic_1d_ownership() {
        let d = Distribution::new(
            DistType::cyclic1d(1),
            IndexDomain::d1(10),
            ProcessorView::linear(4),
        )
        .unwrap();
        check_distribution(&d);
        assert_eq!(d.owner(&Point::d1(1)).unwrap(), ProcId(0));
        assert_eq!(d.owner(&Point::d1(2)).unwrap(), ProcId(1));
        assert_eq!(d.owner(&Point::d1(6)).unwrap(), ProcId(1));
        assert!(d.local_segment(ProcId(0)).is_none());
    }

    #[test]
    fn columns_distribution_keeps_columns_local() {
        // REAL V(NX, NY) DIST(:, BLOCK): each column V(:, j) is local to one
        // processor — the property the ADI x-sweep of Figure 1 relies on.
        let d = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        check_distribution(&d);
        for j in 1..=8i64 {
            let owners: std::collections::HashSet<_> = (1..=8i64)
                .map(|i| d.owner(&Point::d2(i, j)).unwrap())
                .collect();
            assert_eq!(owners.len(), 1, "column {j} spans processors");
        }
        assert_eq!(d.local_size(ProcId(0)), 16);
        let seg = d.local_segment(ProcId(1)).unwrap();
        assert_eq!(seg.dim(0).lower(), 1);
        assert_eq!(seg.dim(0).upper(), 8);
        assert_eq!(seg.dim(1).lower(), 3);
        assert_eq!(seg.dim(1).upper(), 4);
    }

    #[test]
    fn blocks2d_on_grid() {
        let d = Distribution::new(
            DistType::blocks2d(),
            IndexDomain::d2(8, 8),
            ProcessorView::grid2d(2, 2),
        )
        .unwrap();
        check_distribution(&d);
        assert_eq!(d.owner(&Point::d2(1, 1)).unwrap(), ProcId(0));
        assert_eq!(d.owner(&Point::d2(5, 1)).unwrap(), ProcId(1));
        assert_eq!(d.owner(&Point::d2(1, 5)).unwrap(), ProcId(2));
        assert_eq!(d.owner(&Point::d2(5, 5)).unwrap(), ProcId(3));
        assert_eq!(d.local_size(ProcId(0)), 16);
    }

    #[test]
    fn example1_3d_block_block_elision() {
        // REAL C(10,10,10) DIST(BLOCK, BLOCK, :) TO R(1:2,1:2).
        let d = Distribution::new(
            DistType::new(vec![
                DimDist::Block,
                DimDist::Block,
                DimDist::NotDistributed,
            ]),
            IndexDomain::d3(10, 10, 10),
            ProcessorView::grid2d(2, 2),
        )
        .unwrap();
        check_distribution(&d);
        // delta_C(i,j,k) = R(ceil(i/5), ceil(j/5)) for all k.
        for k in 1..=10i64 {
            assert_eq!(d.owner(&Point::d3(3, 2, k)).unwrap(), ProcId(0));
            assert_eq!(d.owner(&Point::d3(7, 2, k)).unwrap(), ProcId(1));
            assert_eq!(d.owner(&Point::d3(2, 9, k)).unwrap(), ProcId(2));
            assert_eq!(d.owner(&Point::d3(9, 9, k)).unwrap(), ProcId(3));
        }
        assert_eq!(d.local_size(ProcId(0)), 5 * 5 * 10);
    }

    #[test]
    fn single_distributed_dim_onto_2d_grid_is_flattened() {
        // DISTRIBUTE B1 :: (BLOCK) with PROCESSORS R(1:2,1:2) (Example 3).
        let d = Distribution::new(
            DistType::block1d(),
            IndexDomain::d1(8),
            ProcessorView::grid2d(2, 2),
        )
        .unwrap();
        check_distribution(&d);
        assert_eq!(d.owner(&Point::d1(1)).unwrap(), ProcId(0));
        assert_eq!(d.owner(&Point::d1(8)).unwrap(), ProcId(3));
    }

    #[test]
    fn rank_mismatch_errors() {
        assert!(matches!(
            Distribution::new(
                DistType::block1d(),
                IndexDomain::d2(4, 4),
                ProcessorView::linear(2)
            ),
            Err(DistError::RankMismatch { .. })
        ));
        // Two distributed dimensions onto a 2-D view of the wrong shape is
        // fine, but onto a 3-D view it is not resolvable.
        assert!(matches!(
            Distribution::new(
                DistType::blocks2d(),
                IndexDomain::d2(4, 4),
                ProcessorView::new(
                    std::sync::Arc::new(crate::ProcessorArray::new("Q", IndexDomain::d3(2, 2, 2))),
                    vf_index::Section::all(&IndexDomain::d3(2, 2, 2)),
                )
                .unwrap()
            ),
            Err(DistError::ProcessorRankMismatch { .. })
        ));
    }

    #[test]
    fn linear_processors_are_factored_into_a_grid() {
        // (BLOCK, BLOCK) on the default 1-D arrangement of 6 processors is
        // mapped onto a balanced 3x2 (or 2x3) factorisation.
        let d = Distribution::new(
            DistType::blocks2d(),
            IndexDomain::d2(12, 12),
            ProcessorView::linear(6),
        )
        .unwrap();
        check_distribution(&d);
        let sizes: Vec<usize> = d.proc_ids().iter().map(|&p| d.local_size(p)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 144);
        // Balanced factorisation: every processor gets the same share here.
        assert!(sizes.iter().all(|&s| s == 24));
        assert_eq!(factor_grid(6, 2).iter().product::<usize>(), 6);
        assert_eq!(factor_grid(16, 2), vec![4, 4]);
        assert_eq!(factor_grid(8, 3).iter().product::<usize>(), 8);
        assert_eq!(factor_grid(1, 2), vec![1, 1]);
        assert_eq!(factor_grid(7, 2), vec![7, 1]);
    }

    #[test]
    fn gen_block_matches_bounds() {
        // DISTRIBUTE FIELD :: B_BLOCK(BOUNDS) from Figure 2.
        let d = Distribution::new(
            DistType::gen_block1d(vec![5, 1, 3, 1]),
            IndexDomain::d1(10),
            ProcessorView::linear(4),
        )
        .unwrap();
        check_distribution(&d);
        assert_eq!(d.local_size(ProcId(0)), 5);
        assert_eq!(d.local_size(ProcId(1)), 1);
        assert_eq!(d.owner(&Point::d1(6)).unwrap(), ProcId(1));
        assert_eq!(d.owner(&Point::d1(7)).unwrap(), ProcId(2));
        // Invalid bounds are rejected.
        assert!(Distribution::new(
            DistType::gen_block1d(vec![5, 1]),
            IndexDomain::d1(10),
            ProcessorView::linear(4)
        )
        .is_err());
    }

    #[test]
    fn replicated_distribution() {
        let d = Distribution::new(
            DistType::new(vec![DimDist::NotDistributed]),
            IndexDomain::d1(6),
            ProcessorView::linear(3),
        )
        .unwrap();
        assert!(d.is_replicated());
        assert_eq!(d.owners(&Point::d1(2)).unwrap().len(), 3);
        for p in 0..3 {
            assert_eq!(d.local_size(ProcId(p)), 6);
            assert!(d.is_local(ProcId(p), &Point::d1(4)));
            assert_eq!(d.loc_map(ProcId(p), &Point::d1(4)).unwrap(), 3);
        }
    }

    #[test]
    fn construct_identity_alignment_shares_mapping() {
        // CONNECT A2(I,J) WITH B4(I,J): same distribution type (Example 2).
        let base = Distribution::new(
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(3)]),
            IndexDomain::d2(10, 10),
            ProcessorView::grid2d(2, 2),
        )
        .unwrap();
        let derived = construct(&Alignment::identity(2), &base, &IndexDomain::d2(10, 10)).unwrap();
        assert!(!derived.uses_translation_table());
        assert_eq!(derived.dist_type(), base.dist_type());
        assert!(derived.same_mapping(&base));
        check_distribution(&derived);
    }

    #[test]
    fn construct_transpose_alignment() {
        // ALIGN D(I,J) WITH C(J,I) over a non-square processor grid: the
        // derived distribution must place D(i,j) with C(j,i).
        let base = Distribution::new(
            DistType::new(vec![DimDist::Block, DimDist::Cyclic(1)]),
            IndexDomain::d2(6, 6),
            ProcessorView::grid2d(2, 3),
        )
        .unwrap();
        let align = Alignment::transpose2d();
        let derived = construct(&align, &base, &IndexDomain::d2(6, 6)).unwrap();
        assert!(!derived.uses_translation_table());
        check_distribution(&derived);
        for i in 1..=6i64 {
            for j in 1..=6i64 {
                assert_eq!(
                    derived.owner(&Point::d2(i, j)).unwrap(),
                    base.owner(&Point::d2(j, i)).unwrap(),
                    "D({i},{j}) must live with C({j},{i})"
                );
            }
        }
    }

    #[test]
    fn estimated_bytes_charge_translation_tables() {
        // A regular distribution is a few dozen bytes; an
        // alignment-derived one of the same size carries O(N) translation
        // tables and must be estimated accordingly (the runtime's plan
        // cache budgets by this).
        let n = 4096usize;
        let base = block_1d(n + 8, 4);
        let regular = block_1d(n, 4);
        let align = Alignment::new(1, vec![crate::AlignExpr::shifted(0, 4)]).unwrap();
        let aligned = construct(&align, &base, &IndexDomain::d1(n)).unwrap();
        assert!(aligned.uses_translation_table());
        // Three O(N) tables of >= 8 bytes per element each.
        assert!(aligned.estimated_bytes() >= 3 * n * 8);
        assert!(regular.estimated_bytes() < 1024);
    }

    #[test]
    fn construct_shifted_alignment_uses_translation_table() {
        let base = block_1d(12, 3);
        let align = Alignment::new(1, vec![crate::AlignExpr::shifted(0, 2)]).unwrap();
        let derived = construct(&align, &base, &IndexDomain::d1(10)).unwrap();
        assert!(derived.uses_translation_table());
        check_distribution(&derived);
        for i in 1..=10i64 {
            assert_eq!(
                derived.owner(&Point::d1(i)).unwrap(),
                base.owner(&Point::d1(i + 2)).unwrap()
            );
        }
        // Out-of-domain alignments are rejected.
        let bad = Alignment::new(1, vec![crate::AlignExpr::shifted(0, 5)]).unwrap();
        assert!(construct(&bad, &base, &IndexDomain::d1(10)).is_err());
    }

    #[test]
    fn owner_fn_distribution() {
        // A user-defined irregular distribution: odd elements on P0, even on P1.
        let procs = ProcessorView::linear(2);
        let d = Distribution::from_owner_fn(DistType::block1d(), IndexDomain::d1(9), procs, |p| {
            ProcId((p.coord(0) % 2 == 0) as usize)
        })
        .unwrap();
        check_distribution(&d);
        assert_eq!(d.local_size(ProcId(0)), 5);
        assert_eq!(d.local_size(ProcId(1)), 4);
        assert!(d.local_segment(ProcId(0)).is_none());
    }

    /// The locator and the run iteration must agree exactly with the
    /// element-wise owner/loc_map API.
    fn check_locator_and_runs(dist: &Distribution) {
        let locator = dist.locator();
        for (lin, point) in dist.domain().clone().iter().enumerate() {
            assert_eq!(dist.domain().linearize(&point).unwrap(), lin);
            let owner = dist.owner(&point).unwrap();
            let local = dist.loc_map(owner, &point).unwrap();
            assert_eq!(locator.locate_lin(lin), (owner, local), "lin {lin}");
            assert_eq!(locator.locate(&point).unwrap(), (owner, local));
        }
        for &p in dist.proc_ids() {
            let runs = dist.local_linear_runs(p);
            // Runs cover the local storage in order, exactly once.
            let total: usize = runs.iter().map(|r| r.len).sum();
            assert_eq!(total, dist.local_size(p), "coverage on {p}");
            let mut expected_local = 0usize;
            for run in &runs {
                assert_eq!(run.local_start, expected_local);
                expected_local += run.len;
                for k in 0..run.len {
                    let point = dist.global_at(p, run.local_start + k).unwrap();
                    assert_eq!(
                        dist.domain().linearize(&point).unwrap(),
                        run.global_start + k,
                        "run element {k} on {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn locator_and_runs_match_elementwise_api() {
        let dists = [
            block_1d(10, 3),
            Distribution::new(
                DistType::cyclic1d(3),
                IndexDomain::d1(20),
                ProcessorView::linear(4),
            )
            .unwrap(),
            Distribution::new(
                DistType::columns(),
                IndexDomain::d2(6, 8),
                ProcessorView::linear(4),
            )
            .unwrap(),
            Distribution::new(
                DistType::rows(),
                IndexDomain::d2(6, 8),
                ProcessorView::linear(3),
            )
            .unwrap(),
            Distribution::new(
                DistType::new(vec![DimDist::Block, DimDist::Cyclic(2)]),
                IndexDomain::d2(9, 7),
                ProcessorView::grid2d(2, 3),
            )
            .unwrap(),
            Distribution::new(
                DistType::gen_block1d(vec![0, 7, 1, 4]),
                IndexDomain::d1(12),
                ProcessorView::linear(4),
            )
            .unwrap(),
            Distribution::new(
                DistType::new(vec![DimDist::NotDistributed]),
                IndexDomain::d1(6),
                ProcessorView::linear(3),
            )
            .unwrap(),
            Distribution::from_owner_fn(
                DistType::block1d(),
                IndexDomain::d1(9),
                ProcessorView::linear(2),
                |p| ProcId((p.coord(0) % 2 == 0) as usize),
            )
            .unwrap(),
            Distribution::new(
                DistType::indirect1d(std::sync::Arc::new(
                    crate::IndirectMap::new(vec![3, 0, 0, 2, 1, 1, 0, 3, 2, 0, 1, 2]).unwrap(),
                )),
                IndexDomain::d1(12),
                ProcessorView::linear(4),
            )
            .unwrap(),
        ];
        for dist in &dists {
            check_locator_and_runs(dist);
        }
    }

    #[test]
    fn indirect_distribution_consistency_and_coalescing() {
        // An INDIRECT map placing interleaved *runs* of elements: the
        // distribution machinery must agree with the map element-wise, and
        // local_linear_runs must coalesce the consecutive same-owner
        // stretches into one run each.
        let owners = vec![0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 1, 1];
        let map = std::sync::Arc::new(crate::IndirectMap::new(owners.clone()).unwrap());
        let d = Distribution::new(
            DistType::indirect1d(std::sync::Arc::clone(&map)),
            IndexDomain::d1(12),
            ProcessorView::linear(2),
        )
        .unwrap();
        check_distribution(&d);
        for (i, &o) in owners.iter().enumerate() {
            assert_eq!(d.owner(&Point::d1(i as i64 + 1)).unwrap(), ProcId(o));
        }
        // P0 owns offsets 0..3 and 6..8 -> 2 runs; P1 owns 3..6 and 8..12.
        assert_eq!(d.local_linear_runs(ProcId(0)).len(), 2);
        assert_eq!(d.local_linear_runs(ProcId(1)).len(), 2);
        // Scattered owner sets have no contiguous segment descriptor.
        assert!(d.local_segment(ProcId(0)).is_none());
        // Fingerprints distinguish maps and repeat deterministically.
        let same = Distribution::new(
            DistType::indirect1d(std::sync::Arc::new(
                crate::IndirectMap::new(owners).unwrap(),
            )),
            IndexDomain::d1(12),
            ProcessorView::linear(2),
        )
        .unwrap();
        assert_eq!(d.fingerprint(), same.fingerprint());
        let flipped = Distribution::new(
            DistType::indirect1d(std::sync::Arc::new(
                crate::IndirectMap::new(vec![1, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0]).unwrap(),
            )),
            IndexDomain::d1(12),
            ProcessorView::linear(2),
        )
        .unwrap();
        assert_ne!(d.fingerprint(), flipped.fingerprint());
        // The O(N) mapping tables are charged to the byte estimate.
        assert!(d.estimated_bytes() >= 12 * 8);
        // An invalid map (wrong length / owner out of range) is rejected at
        // Distribution::new time.
        assert!(Distribution::new(
            DistType::indirect1d(std::sync::Arc::clone(&map)),
            IndexDomain::d1(11),
            ProcessorView::linear(2)
        )
        .is_err());
        assert!(Distribution::new(
            DistType::indirect1d(map),
            IndexDomain::d1(12),
            ProcessorView::linear(1)
        )
        .is_err());
    }

    #[test]
    fn block_runs_are_maximally_merged() {
        // (:, BLOCK) columns: each processor's storage is one contiguous
        // global slab -> exactly one run.
        let d = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        for &p in d.proc_ids() {
            assert_eq!(d.local_linear_runs(p).len(), 1, "columns on {p}");
        }
        // (BLOCK, :) rows: one run per column of the local block.
        let d = Distribution::new(
            DistType::rows(),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        for &p in d.proc_ids() {
            assert_eq!(d.local_linear_runs(p).len(), 8, "rows on {p}");
        }
    }

    #[test]
    fn fingerprints_identify_mappings() {
        let a = block_1d(16, 4);
        let b = block_1d(16, 4);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different type, domain, or processor count all change the
        // fingerprint.
        assert_ne!(
            a.fingerprint(),
            Distribution::new(
                DistType::cyclic1d(1),
                IndexDomain::d1(16),
                ProcessorView::linear(4)
            )
            .unwrap()
            .fingerprint()
        );
        assert_ne!(a.fingerprint(), block_1d(17, 4).fingerprint());
        assert_ne!(a.fingerprint(), block_1d(16, 2).fingerprint());
        // Different gen-block bounds differ too (Figure 2 rebalancing).
        let g1 = Distribution::new(
            DistType::gen_block1d(vec![8, 8]),
            IndexDomain::d1(16),
            ProcessorView::linear(2),
        )
        .unwrap();
        let g2 = Distribution::new(
            DistType::gen_block1d(vec![4, 12]),
            IndexDomain::d1(16),
            ProcessorView::linear(2),
        )
        .unwrap();
        assert_ne!(g1.fingerprint(), g2.fingerprint());
    }

    #[test]
    fn pattern_matches_distribution_type() {
        let d = Distribution::new(
            DistType::columns(),
            IndexDomain::d2(8, 8),
            ProcessorView::linear(4),
        )
        .unwrap();
        let q = crate::DistPattern::dims(vec![DimPattern::NotDistributed, DimPattern::Block]);
        assert!(q.matches(d.dist_type()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_regular_distributions_are_consistent(
            n1 in 1usize..20,
            n2 in 1usize..20,
            rows in 1usize..4,
            cols in 1usize..4,
            kind in 0usize..4,
            k in 1usize..4,
        ) {
            let dim0 = match kind {
                0 => DimDist::Block,
                1 => DimDist::Cyclic(k),
                2 => DimDist::NotDistributed,
                _ => DimDist::Block,
            };
            let dim1 = match kind {
                0 => DimDist::Cyclic(k),
                1 => DimDist::Block,
                2 => DimDist::Block,
                _ => DimDist::NotDistributed,
            };
            let ddims = [&dim0, &dim1].iter().filter(|d| d.is_distributed()).count();
            let procs = if ddims == 2 {
                ProcessorView::grid2d(rows, cols)
            } else {
                ProcessorView::linear(rows * cols)
            };
            let dist = Distribution::new(
                DistType::new(vec![dim0, dim1]),
                IndexDomain::d2(n1, n2),
                procs,
            ).unwrap();
            check_distribution(&dist);
        }

        #[test]
        fn prop_gen_block_consistent(sizes in proptest::collection::vec(0usize..8, 1..6)) {
            let n: usize = sizes.iter().sum();
            prop_assume!(n > 0);
            let p = sizes.len();
            let dist = Distribution::new(
                DistType::gen_block1d(sizes),
                IndexDomain::d1(n),
                ProcessorView::linear(p),
            ).unwrap();
            check_distribution(&dist);
        }
    }
}
