//! Per-dimension intrinsic distribution functions.

use crate::{DistError, IndirectMap, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A contiguous run of global element offsets (0-based within one dimension)
/// owned by one processor — the per-dimension part of the paper's `segment`
/// descriptor component ("the sequence of the local lower and upper bounds
/// in each dimension", §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimSegment {
    /// First owned global offset (0-based within the dimension).
    pub start: usize,
    /// Number of owned elements.
    pub len: usize,
}

impl DimSegment {
    /// Whether the segment owns `offset`.
    #[inline]
    pub fn contains(&self, offset: usize) -> bool {
        offset >= self.start && offset < self.start + self.len
    }

    /// One-past-the-end offset.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// The intrinsic per-dimension distribution functions of Vienna Fortran
/// (paper §2.2): `BLOCK`, `CYCLIC(k)`, general block (`B_BLOCK`/`S_BLOCK`)
/// and the elision symbol `:` which leaves a dimension undistributed.
///
/// All per-dimension arithmetic is expressed over 0-based element offsets
/// `0..n` (where `n` is the dimension extent) and 0-based processor grid
/// coordinates `0..nprocs` in the corresponding processor dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimDist {
    /// `BLOCK`: evenly sized contiguous segments (block size `ceil(n/P)`).
    Block,
    /// `CYCLIC(k)`: blocks of `k` consecutive elements dealt round-robin.
    /// `CYCLIC` without an argument is `CYCLIC(1)`.
    Cyclic(usize),
    /// General block (`B_BLOCK(sizes)` / `S_BLOCK`): contiguous blocks of
    /// the given (possibly irregular) sizes, one per processor, in processor
    /// order.  The paper's Figure 2 uses this for load-balanced PIC cells.
    GenBlock(Vec<usize>),
    /// `INDIRECT(map)`: every element is placed by a mapping array (a user-
    /// or partitioner-computed owner per element) — the irregular
    /// distribution function the PARTI translation-table machinery exists
    /// for.  The map is shared (`Arc`), so a connect class distributed
    /// through one map holds a single copy of its tables.
    Indirect(Arc<IndirectMap>),
    /// The elision symbol `:` — the dimension is not distributed; every
    /// processor of the target view holds the full extent locally.
    NotDistributed,
}

impl DimDist {
    /// `BLOCK`.
    pub fn block() -> Self {
        DimDist::Block
    }

    /// `CYCLIC` (equivalent to `CYCLIC(1)`).
    pub fn cyclic() -> Self {
        DimDist::Cyclic(1)
    }

    /// `CYCLIC(k)`.
    pub fn cyclic_k(k: usize) -> Self {
        DimDist::Cyclic(k)
    }

    /// `B_BLOCK(sizes)`: general block from per-processor block sizes
    /// (the `BOUNDS` array of Figure 2).
    pub fn gen_block(sizes: Vec<usize>) -> Self {
        DimDist::GenBlock(sizes)
    }

    /// `INDIRECT(map)`: distribution through a shared mapping array.
    pub fn indirect(map: Arc<IndirectMap>) -> Self {
        DimDist::Indirect(map)
    }

    /// The elision `:`.
    pub fn not_distributed() -> Self {
        DimDist::NotDistributed
    }

    /// Whether the dimension consumes a processor dimension.
    pub fn is_distributed(&self) -> bool {
        !matches!(self, DimDist::NotDistributed)
    }

    /// Validates the distribution for a dimension of extent `n` mapped onto
    /// `nprocs` processors.
    pub fn validate(&self, n: usize, nprocs: usize) -> Result<()> {
        match self {
            DimDist::Block | DimDist::NotDistributed => Ok(()),
            DimDist::Cyclic(k) => {
                if *k == 0 {
                    Err(DistError::ZeroCyclicWidth)
                } else {
                    Ok(())
                }
            }
            DimDist::GenBlock(sizes) => {
                if sizes.len() != nprocs {
                    return Err(DistError::GenBlockCountMismatch {
                        sizes: sizes.len(),
                        procs: nprocs,
                    });
                }
                let total: usize = sizes.iter().sum();
                if total != n {
                    return Err(DistError::GenBlockSizeMismatch { total, extent: n });
                }
                Ok(())
            }
            DimDist::Indirect(map) => {
                if map.len() != n {
                    return Err(DistError::IndirectLengthMismatch {
                        map_len: map.len(),
                        extent: n,
                    });
                }
                if map.max_owner() >= nprocs {
                    return Err(DistError::IndirectOwnerOutOfRange {
                        owner: map.max_owner(),
                        procs: nprocs,
                    });
                }
                Ok(())
            }
        }
    }

    /// Standard block size for `BLOCK`: `ceil(n / nprocs)`.
    #[inline]
    pub fn block_size(n: usize, nprocs: usize) -> usize {
        n.div_ceil(nprocs.max(1))
    }

    /// The processor grid coordinate owning global offset `offset`.
    ///
    /// Must not be called for [`DimDist::NotDistributed`] (the dimension
    /// does not select a processor); callers handle that case separately.
    pub fn owner(&self, offset: usize, n: usize, nprocs: usize) -> usize {
        debug_assert!(offset < n, "offset {offset} out of extent {n}");
        match self {
            DimDist::Block => {
                let b = Self::block_size(n, nprocs);
                (offset / b).min(nprocs - 1)
            }
            DimDist::Cyclic(k) => (offset / k) % nprocs,
            DimDist::GenBlock(sizes) => {
                let mut acc = 0usize;
                for (j, &s) in sizes.iter().enumerate() {
                    acc += s;
                    if offset < acc {
                        return j;
                    }
                }
                sizes.len() - 1
            }
            DimDist::Indirect(map) => map.owner(offset),
            DimDist::NotDistributed => {
                unreachable!("owner() called on an undistributed dimension")
            }
        }
    }

    /// Number of elements of the dimension stored locally by processor grid
    /// coordinate `proc`.
    pub fn local_count(&self, proc: usize, n: usize, nprocs: usize) -> usize {
        match self {
            DimDist::Block => {
                let b = Self::block_size(n, nprocs);
                n.saturating_sub(proc * b).min(b)
            }
            DimDist::Cyclic(k) => {
                let period = k * nprocs;
                let full = n / period;
                let rem = n % period;
                let extra = rem.saturating_sub(proc * k).min(*k);
                full * k + extra
            }
            DimDist::GenBlock(sizes) => sizes.get(proc).copied().unwrap_or(0),
            DimDist::Indirect(map) => map.local_count(proc),
            DimDist::NotDistributed => n,
        }
    }

    /// Local (0-based) offset of global offset `offset` on its owning
    /// processor.
    pub fn local_offset(&self, offset: usize, n: usize, nprocs: usize) -> usize {
        match self {
            DimDist::Block => {
                let b = Self::block_size(n, nprocs);
                let owner = (offset / b).min(nprocs - 1);
                offset - owner * b
            }
            DimDist::Cyclic(k) => {
                let period = k * nprocs;
                (offset / period) * k + offset % k
            }
            DimDist::GenBlock(sizes) => {
                let owner = self.owner(offset, n, nprocs);
                let start: usize = sizes[..owner].iter().sum();
                offset - start
            }
            DimDist::Indirect(map) => map.local_offset(offset),
            DimDist::NotDistributed => offset,
        }
    }

    /// Global offset of local offset `local` on processor grid coordinate
    /// `proc` — the inverse of [`DimDist::local_offset`].
    pub fn global_offset(&self, proc: usize, local: usize, n: usize, nprocs: usize) -> usize {
        match self {
            DimDist::Block => {
                let b = Self::block_size(n, nprocs);
                proc * b + local
            }
            DimDist::Cyclic(k) => {
                let period = k * nprocs;
                (local / k) * period + proc * k + local % k
            }
            DimDist::GenBlock(sizes) => {
                let start: usize = sizes[..proc].iter().sum();
                start + local
            }
            DimDist::Indirect(map) => map.global_offset(proc, local),
            DimDist::NotDistributed => local,
        }
    }

    /// The contiguous global segment owned by `proc`, if the local element
    /// set is a single contiguous run (always true for `BLOCK`, general
    /// block and `:`; true for `CYCLIC(k)` only when each processor receives
    /// at most one block).
    pub fn segment(&self, proc: usize, n: usize, nprocs: usize) -> Option<DimSegment> {
        match self {
            DimDist::Block => {
                let b = Self::block_size(n, nprocs);
                let start = (proc * b).min(n);
                let len = n.saturating_sub(start).min(b);
                Some(DimSegment { start, len })
            }
            DimDist::Cyclic(k) => {
                if nprocs == 1 {
                    return Some(DimSegment { start: 0, len: n });
                }
                if n <= k * nprocs {
                    let start = (proc * k).min(n);
                    let len = n.saturating_sub(start).min(*k);
                    Some(DimSegment { start, len })
                } else {
                    None
                }
            }
            DimDist::GenBlock(sizes) => {
                let start: usize = sizes[..proc.min(sizes.len())].iter().sum();
                let len = sizes.get(proc).copied().unwrap_or(0);
                Some(DimSegment { start, len })
            }
            DimDist::Indirect(map) => map.segment(proc),
            DimDist::NotDistributed => Some(DimSegment { start: 0, len: n }),
        }
    }

    /// Heap bytes held by the entry beyond its enum footprint — general
    /// block size lists and (shared) indirect mapping tables.  Consumers
    /// that budget memory by estimated bytes (the runtime's plan cache)
    /// charge this per clone, a deliberately conservative over-count for
    /// `Arc`-shared maps.
    pub fn payload_bytes(&self) -> usize {
        match self {
            DimDist::Block | DimDist::Cyclic(_) | DimDist::NotDistributed => 0,
            DimDist::GenBlock(sizes) => sizes.len() * std::mem::size_of::<usize>(),
            DimDist::Indirect(map) => map.estimated_bytes(),
        }
    }
}

impl fmt::Display for DimDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimDist::Block => write!(f, "BLOCK"),
            DimDist::Cyclic(1) => write!(f, "CYCLIC"),
            DimDist::Cyclic(k) => write!(f, "CYCLIC({k})"),
            DimDist::GenBlock(sizes) => {
                write!(f, "B_BLOCK(")?;
                for (i, s) in sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            DimDist::Indirect(map) => {
                write!(f, "INDIRECT(#{:08x})", map.fingerprint() as u32)
            }
            DimDist::NotDistributed => write!(f, ":"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_consistency(d: &DimDist, n: usize, nprocs: usize) {
        // Ownership, local offsets, local counts and segments must agree.
        let mut counts = vec![0usize; nprocs];
        for o in 0..n {
            let p = d.owner(o, n, nprocs);
            assert!(p < nprocs, "{d} owner {p} out of range");
            let l = d.local_offset(o, n, nprocs);
            assert!(
                l < d.local_count(p, n, nprocs),
                "{d}: local offset beyond count"
            );
            assert_eq!(
                d.global_offset(p, l, n, nprocs),
                o,
                "{d}: round trip failed"
            );
            counts[p] += 1;
            if let Some(seg) = d.segment(p, n, nprocs) {
                assert!(seg.contains(o), "{d}: segment misses owned offset {o}");
            }
        }
        for (p, &c) in counts.iter().enumerate() {
            assert_eq!(c, d.local_count(p, n, nprocs), "{d}: count mismatch on {p}");
            if let Some(seg) = d.segment(p, n, nprocs) {
                assert_eq!(seg.len, c, "{d}: segment length mismatch on {p}");
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), n);
    }

    #[test]
    fn block_distribution() {
        let d = DimDist::block();
        check_consistency(&d, 10, 3); // blocks of 4, 4, 2
        assert_eq!(d.owner(0, 10, 3), 0);
        assert_eq!(d.owner(4, 10, 3), 1);
        assert_eq!(d.owner(9, 10, 3), 2);
        assert_eq!(d.local_count(0, 10, 3), 4);
        assert_eq!(d.local_count(2, 10, 3), 2);
        assert_eq!(d.segment(1, 10, 3), Some(DimSegment { start: 4, len: 4 }));
        // Degenerate: fewer elements than processors.
        check_consistency(&d, 2, 4);
        assert_eq!(d.local_count(3, 2, 4), 0);
    }

    #[test]
    fn cyclic_distribution() {
        let d = DimDist::cyclic();
        check_consistency(&d, 10, 3);
        assert_eq!(d.owner(0, 10, 3), 0);
        assert_eq!(d.owner(1, 10, 3), 1);
        assert_eq!(d.owner(3, 10, 3), 0);
        assert_eq!(d.local_count(0, 10, 3), 4);
        assert_eq!(d.local_count(1, 10, 3), 3);
        assert_eq!(d.segment(0, 10, 3), None);
    }

    #[test]
    fn cyclic_k_distribution() {
        let d = DimDist::cyclic_k(3);
        check_consistency(&d, 20, 4);
        assert_eq!(d.owner(0, 20, 4), 0);
        assert_eq!(d.owner(3, 20, 4), 1);
        assert_eq!(d.owner(12, 20, 4), 0);
        // When n <= k * nprocs the layout degenerates to (possibly short) blocks.
        let small = DimDist::cyclic_k(8);
        check_consistency(&small, 20, 4);
        assert!(small.segment(0, 20, 4).is_some());
    }

    #[test]
    fn gen_block_distribution() {
        let d = DimDist::gen_block(vec![5, 1, 3, 1]);
        assert!(d.validate(10, 4).is_ok());
        check_consistency(&d, 10, 4);
        assert_eq!(d.owner(4, 10, 4), 0);
        assert_eq!(d.owner(5, 10, 4), 1);
        assert_eq!(d.owner(6, 10, 4), 2);
        assert_eq!(d.segment(2, 10, 4), Some(DimSegment { start: 6, len: 3 }));
        // Zero-sized blocks are permitted (a processor may own no cells).
        let z = DimDist::gen_block(vec![0, 10, 0, 0]);
        check_consistency(&z, 10, 4);
    }

    #[test]
    fn indirect_distribution() {
        let map = Arc::new(IndirectMap::new(vec![2, 0, 0, 1, 2, 0, 3, 3, 1, 0]).unwrap());
        let d = DimDist::indirect(Arc::clone(&map));
        assert!(d.validate(10, 4).is_ok());
        check_consistency(&d, 10, 4);
        assert_eq!(d.owner(0, 10, 4), 2);
        assert_eq!(d.owner(3, 10, 4), 1);
        assert_eq!(d.local_count(0, 10, 4), 4);
        assert_eq!(d.local_count(3, 10, 4), 2);
        // A scattered owner set has no contiguous segment; a contiguous one
        // reports it.
        assert_eq!(d.segment(0, 10, 4), None);
        let blockish = DimDist::indirect(Arc::new(
            IndirectMap::new(vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]).unwrap(),
        ));
        check_consistency(&blockish, 10, 4);
        assert_eq!(
            blockish.segment(1, 10, 4),
            Some(DimSegment { start: 3, len: 2 })
        );
        // Length and owner-range validation.
        assert!(matches!(
            d.validate(9, 4),
            Err(DistError::IndirectLengthMismatch { .. })
        ));
        assert!(matches!(
            d.validate(10, 3),
            Err(DistError::IndirectOwnerOutOfRange { .. })
        ));
        assert!(d.is_distributed());
        assert!(d.payload_bytes() > 0);
        assert_eq!(DimDist::block().payload_bytes(), 0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            DimDist::cyclic_k(0).validate(10, 2),
            Err(DistError::ZeroCyclicWidth)
        ));
        assert!(matches!(
            DimDist::gen_block(vec![3, 3]).validate(10, 2),
            Err(DistError::GenBlockSizeMismatch { .. })
        ));
        assert!(matches!(
            DimDist::gen_block(vec![5, 5]).validate(10, 3),
            Err(DistError::GenBlockCountMismatch { .. })
        ));
        assert!(DimDist::block().validate(10, 3).is_ok());
    }

    #[test]
    fn not_distributed_is_identity() {
        let d = DimDist::not_distributed();
        assert_eq!(d.local_count(0, 7, 1), 7);
        assert_eq!(d.local_offset(5, 7, 1), 5);
        assert_eq!(d.global_offset(0, 5, 7, 1), 5);
        assert_eq!(d.segment(0, 7, 1), Some(DimSegment { start: 0, len: 7 }));
        assert!(!d.is_distributed());
    }

    #[test]
    fn display_forms() {
        assert_eq!(DimDist::block().to_string(), "BLOCK");
        assert_eq!(DimDist::cyclic().to_string(), "CYCLIC");
        assert_eq!(DimDist::cyclic_k(4).to_string(), "CYCLIC(4)");
        assert_eq!(DimDist::gen_block(vec![2, 3]).to_string(), "B_BLOCK(2,3)");
        assert_eq!(DimDist::not_distributed().to_string(), ":");
    }

    proptest! {
        #[test]
        fn prop_block_consistency(n in 1usize..200, p in 1usize..17) {
            check_consistency(&DimDist::block(), n, p);
        }

        #[test]
        fn prop_cyclic_consistency(n in 1usize..200, p in 1usize..17, k in 1usize..9) {
            check_consistency(&DimDist::cyclic_k(k), n, p);
        }

        #[test]
        fn prop_gen_block_consistency(sizes in proptest::collection::vec(0usize..20, 1..9)) {
            let n: usize = sizes.iter().sum();
            if n > 0 {
                let p = sizes.len();
                check_consistency(&DimDist::gen_block(sizes), n, p);
            }
        }

        #[test]
        fn prop_block_balance(n in 1usize..500, p in 1usize..17) {
            // BLOCK spreads elements so that counts differ by at most one
            // block and no processor exceeds ceil(n/p).
            let d = DimDist::block();
            let b = DimDist::block_size(n, p);
            for j in 0..p {
                prop_assert!(d.local_count(j, n, p) <= b);
            }
        }
    }
}
