//! Error type for the distribution layer.

use std::fmt;
use vf_index::IndexError;

/// Errors produced when building or evaluating distributions and alignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The number of per-dimension distribution entries does not match the
    /// rank of the array being distributed.
    RankMismatch {
        /// Rank of the array's index domain.
        array_rank: usize,
        /// Number of entries in the distribution expression.
        dist_rank: usize,
    },
    /// The number of *distributed* dimensions does not match the rank of the
    /// target processor view (and the fallback 1-D flattening does not
    /// apply either).
    ProcessorRankMismatch {
        /// Number of distributed (non-`:`) dimensions in the expression.
        distributed_dims: usize,
        /// Rank of the processor view.
        proc_rank: usize,
    },
    /// The block sizes of a general block (`B_BLOCK`) distribution do not
    /// cover the dimension exactly.
    GenBlockSizeMismatch {
        /// Sum of the supplied block sizes.
        total: usize,
        /// Extent of the array dimension being distributed.
        extent: usize,
    },
    /// The number of general-block sizes differs from the number of
    /// processors in the target dimension.
    GenBlockCountMismatch {
        /// Number of block sizes supplied.
        sizes: usize,
        /// Number of processors in the corresponding processor dimension.
        procs: usize,
    },
    /// A `CYCLIC(k)` distribution was given a zero block width.
    ZeroCyclicWidth,
    /// An `INDIRECT` mapping array does not cover the dimension exactly.
    IndirectLengthMismatch {
        /// Number of entries in the mapping array.
        map_len: usize,
        /// Extent of the array dimension being distributed.
        extent: usize,
    },
    /// An `INDIRECT` mapping array names a processor coordinate outside the
    /// target processor dimension.
    IndirectOwnerOutOfRange {
        /// The offending owner coordinate.
        owner: usize,
        /// Number of processors in the target dimension.
        procs: usize,
    },
    /// An `INDIRECT` mapping array has no entries.
    EmptyIndirectMap,
    /// A CSR connectivity is structurally invalid (empty or non-monotone
    /// row pointers, or adjacency entries out of range).
    InvalidConnectivity {
        /// What is wrong with the CSR arrays.
        reason: String,
    },
    /// An alignment's rank is inconsistent with the arrays it connects.
    AlignmentRankMismatch {
        /// Expected rank (of the source array).
        expected: usize,
        /// Rank found in the alignment expression.
        found: usize,
    },
    /// An alignment mapped an index outside the target array's domain.
    AlignmentOutOfDomain {
        /// Rendering of the offending target point.
        point: String,
    },
    /// A point was passed to a distribution that does not own it on the
    /// queried processor.
    NotLocal {
        /// The queried processor.
        proc: usize,
        /// Rendering of the global point.
        point: String,
    },
    /// The queried processor id is outside the processor view.
    NoSuchProcessor {
        /// The offending processor id.
        proc: usize,
        /// Number of processors in the view.
        count: usize,
    },
    /// An index-domain level error.
    Index(IndexError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::RankMismatch {
                array_rank,
                dist_rank,
            } => write!(
                f,
                "distribution expression has {dist_rank} entries but the array has rank {array_rank}"
            ),
            DistError::ProcessorRankMismatch {
                distributed_dims,
                proc_rank,
            } => write!(
                f,
                "{distributed_dims} distributed dimension(s) cannot be mapped onto a rank-{proc_rank} processor view"
            ),
            DistError::GenBlockSizeMismatch { total, extent } => write!(
                f,
                "general block sizes sum to {total} but the dimension extent is {extent}"
            ),
            DistError::GenBlockCountMismatch { sizes, procs } => write!(
                f,
                "general block distribution supplies {sizes} sizes for {procs} processors"
            ),
            DistError::ZeroCyclicWidth => write!(f, "CYCLIC(k) requires k >= 1"),
            DistError::IndirectLengthMismatch { map_len, extent } => write!(
                f,
                "INDIRECT mapping array has {map_len} entries but the dimension extent is {extent}"
            ),
            DistError::IndirectOwnerOutOfRange { owner, procs } => write!(
                f,
                "INDIRECT mapping array names owner {owner} but the target has {procs} processors"
            ),
            DistError::EmptyIndirectMap => write!(f, "INDIRECT mapping array is empty"),
            DistError::InvalidConnectivity { reason } => {
                write!(f, "invalid CSR connectivity: {reason}")
            }
            DistError::AlignmentRankMismatch { expected, found } => write!(
                f,
                "alignment rank mismatch: expected {expected}, found {found}"
            ),
            DistError::AlignmentOutOfDomain { point } => {
                write!(f, "alignment maps to {point}, outside the target domain")
            }
            DistError::NotLocal { proc, point } => {
                write!(f, "element {point} is not local to processor {proc}")
            }
            DistError::NoSuchProcessor { proc, count } => {
                write!(f, "processor {proc} out of range (view has {count} processors)")
            }
            DistError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IndexError> for DistError {
    fn from(e: IndexError) -> Self {
        DistError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<DistError> = vec![
            DistError::RankMismatch {
                array_rank: 2,
                dist_rank: 3,
            },
            DistError::ProcessorRankMismatch {
                distributed_dims: 2,
                proc_rank: 1,
            },
            DistError::GenBlockSizeMismatch {
                total: 90,
                extent: 100,
            },
            DistError::GenBlockCountMismatch { sizes: 3, procs: 4 },
            DistError::ZeroCyclicWidth,
            DistError::IndirectLengthMismatch {
                map_len: 9,
                extent: 10,
            },
            DistError::IndirectOwnerOutOfRange { owner: 4, procs: 4 },
            DistError::EmptyIndirectMap,
            DistError::InvalidConnectivity {
                reason: "row pointers are not monotone".into(),
            },
            DistError::AlignmentRankMismatch {
                expected: 3,
                found: 2,
            },
            DistError::AlignmentOutOfDomain {
                point: "(11, 1)".into(),
            },
            DistError::NotLocal {
                proc: 2,
                point: "(5)".into(),
            },
            DistError::NoSuchProcessor { proc: 9, count: 4 },
            DistError::Index(IndexError::InvalidStride { stride: 0 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn from_index_error() {
        let e: DistError = IndexError::RankTooLarge { requested: 9 }.into();
        assert!(matches!(e, DistError::Index(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
