//! Distribution-type patterns for `RANGE` attributes and `DCASE`/`IDT`
//! queries.

use crate::{DimDist, DistType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-dimension pattern in a distribution query or `RANGE` entry.
///
/// The paper's Example 4 uses patterns such as `(BLOCK, *)` and
/// `(CYCLIC, CYCLIC(*))`: `*` matches any per-dimension distribution, and
/// `CYCLIC(*)` matches a cyclic distribution with any block width.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimPattern {
    /// `*` — matches any per-dimension distribution (including `:`).
    Star,
    /// `BLOCK`.
    Block,
    /// `CYCLIC(k)`; `CYCLIC` is `CYCLIC(1)`.
    Cyclic(usize),
    /// `CYCLIC(*)` — any cyclic width.
    CyclicAny,
    /// Any general block distribution (`B_BLOCK(*)`), regardless of sizes.
    GenBlockAny,
    /// A general block distribution with exactly these sizes.
    GenBlock(Vec<usize>),
    /// Any indirect distribution (`INDIRECT(*)`), regardless of the map —
    /// the `DCASE` arm an irregular code uses to select its
    /// inspector/executor branch.
    IndirectAny,
    /// An indirect distribution through the mapping array with exactly this
    /// [`crate::IndirectMap::fingerprint`].
    IndirectMap(u64),
    /// `:` — the dimension is not distributed.
    NotDistributed,
}

impl DimPattern {
    /// Whether this pattern matches the concrete per-dimension distribution
    /// `dist`.
    pub fn matches(&self, dist: &DimDist) -> bool {
        match (self, dist) {
            (DimPattern::Star, _) => true,
            (DimPattern::Block, DimDist::Block) => true,
            (DimPattern::Cyclic(k), DimDist::Cyclic(k2)) => k == k2,
            (DimPattern::CyclicAny, DimDist::Cyclic(_)) => true,
            (DimPattern::GenBlockAny, DimDist::GenBlock(_)) => true,
            (DimPattern::GenBlock(sizes), DimDist::GenBlock(s2)) => sizes == s2,
            (DimPattern::IndirectAny, DimDist::Indirect(_)) => true,
            (DimPattern::IndirectMap(fp), DimDist::Indirect(map)) => *fp == map.fingerprint(),
            (DimPattern::NotDistributed, DimDist::NotDistributed) => true,
            _ => false,
        }
    }
}

impl From<&DimDist> for DimPattern {
    /// The exact pattern matching only `dist`.
    fn from(dist: &DimDist) -> Self {
        match dist {
            DimDist::Block => DimPattern::Block,
            DimDist::Cyclic(k) => DimPattern::Cyclic(*k),
            DimDist::GenBlock(s) => DimPattern::GenBlock(s.clone()),
            DimDist::Indirect(map) => DimPattern::IndirectMap(map.fingerprint()),
            DimDist::NotDistributed => DimPattern::NotDistributed,
        }
    }
}

impl fmt::Display for DimPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimPattern::Star => write!(f, "*"),
            DimPattern::Block => write!(f, "BLOCK"),
            DimPattern::Cyclic(1) => write!(f, "CYCLIC"),
            DimPattern::Cyclic(k) => write!(f, "CYCLIC({k})"),
            DimPattern::CyclicAny => write!(f, "CYCLIC(*)"),
            DimPattern::GenBlockAny => write!(f, "B_BLOCK(*)"),
            DimPattern::GenBlock(sizes) => {
                write!(f, "B_BLOCK(")?;
                for (i, s) in sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
            DimPattern::IndirectAny => write!(f, "INDIRECT(*)"),
            DimPattern::IndirectMap(fp) => write!(f, "INDIRECT(#{:08x})", *fp as u32),
            DimPattern::NotDistributed => write!(f, ":"),
        }
    }
}

/// A pattern over an entire distribution type.
///
/// `RANGE` attributes (paper §2.3) and `DCASE`/`IDT` queries (paper §2.5)
/// both use these patterns; `DistPattern::Any` is the bare `*` "don't-care"
/// entry, matching every distribution type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistPattern {
    /// The bare `*`: matches any distribution type of any rank.
    Any,
    /// A parenthesised list of per-dimension patterns; the rank must match.
    Dims(Vec<DimPattern>),
}

impl DistPattern {
    /// A pattern from per-dimension patterns.
    pub fn dims(patterns: Vec<DimPattern>) -> Self {
        DistPattern::Dims(patterns)
    }

    /// The exact pattern matching only `dist_type`.
    pub fn exact(dist_type: &DistType) -> Self {
        DistPattern::Dims(dist_type.dims().iter().map(DimPattern::from).collect())
    }

    /// Whether the pattern matches `dist_type`.
    pub fn matches(&self, dist_type: &DistType) -> bool {
        match self {
            DistPattern::Any => true,
            DistPattern::Dims(pats) => {
                pats.len() == dist_type.rank()
                    && pats.iter().zip(dist_type.dims()).all(|(p, d)| p.matches(d))
            }
        }
    }

    /// Whether every distribution type matched by `other` is also matched by
    /// `self` (a conservative subsumption test used by the compiler-side
    /// partial evaluation of queries).
    pub fn subsumes(&self, other: &DistPattern) -> bool {
        match (self, other) {
            (DistPattern::Any, _) => true,
            (DistPattern::Dims(_), DistPattern::Any) => false,
            (DistPattern::Dims(a), DistPattern::Dims(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b.iter()).all(|(pa, pb)| match (pa, pb) {
                        (DimPattern::Star, _) => true,
                        (DimPattern::CyclicAny, DimPattern::Cyclic(_))
                        | (DimPattern::CyclicAny, DimPattern::CyclicAny) => true,
                        (DimPattern::GenBlockAny, DimPattern::GenBlock(_))
                        | (DimPattern::GenBlockAny, DimPattern::GenBlockAny) => true,
                        (DimPattern::IndirectAny, DimPattern::IndirectMap(_))
                        | (DimPattern::IndirectAny, DimPattern::IndirectAny) => true,
                        _ => pa == pb,
                    })
            }
        }
    }
}

impl fmt::Display for DistPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistPattern::Any => write!(f, "*"),
            DistPattern::Dims(pats) => {
                write!(f, "(")?;
                for (i, p) in pats.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_pattern_matching() {
        assert!(DimPattern::Star.matches(&DimDist::Block));
        assert!(DimPattern::Star.matches(&DimDist::NotDistributed));
        assert!(DimPattern::Block.matches(&DimDist::Block));
        assert!(!DimPattern::Block.matches(&DimDist::Cyclic(1)));
        assert!(DimPattern::Cyclic(2).matches(&DimDist::Cyclic(2)));
        assert!(!DimPattern::Cyclic(2).matches(&DimDist::Cyclic(3)));
        assert!(DimPattern::CyclicAny.matches(&DimDist::Cyclic(7)));
        assert!(!DimPattern::CyclicAny.matches(&DimDist::Block));
        assert!(DimPattern::GenBlockAny.matches(&DimDist::GenBlock(vec![1, 2])));
        assert!(DimPattern::GenBlock(vec![1, 2]).matches(&DimDist::GenBlock(vec![1, 2])));
        assert!(!DimPattern::GenBlock(vec![1, 2]).matches(&DimDist::GenBlock(vec![2, 1])));
        assert!(DimPattern::NotDistributed.matches(&DimDist::NotDistributed));
        assert!(!DimPattern::NotDistributed.matches(&DimDist::Block));
    }

    #[test]
    fn indirect_patterns() {
        let map = std::sync::Arc::new(crate::IndirectMap::new(vec![0, 1, 0, 1]).unwrap());
        let other = std::sync::Arc::new(crate::IndirectMap::new(vec![1, 0, 1, 0]).unwrap());
        let d = DimDist::indirect(std::sync::Arc::clone(&map));
        assert!(DimPattern::IndirectAny.matches(&d));
        assert!(DimPattern::Star.matches(&d));
        assert!(!DimPattern::Block.matches(&d));
        assert!(!DimPattern::IndirectAny.matches(&DimDist::Block));
        // The exact pattern is keyed by the map fingerprint.
        let exact = DimPattern::from(&d);
        assert!(exact.matches(&d));
        assert!(!exact.matches(&DimDist::indirect(other)));
        // Subsumption: INDIRECT(*) covers every specific map.
        let any = DistPattern::dims(vec![DimPattern::IndirectAny]);
        let specific = DistPattern::dims(vec![exact]);
        assert!(any.subsumes(&specific));
        assert!(!specific.subsumes(&any));
        assert_eq!(DimPattern::IndirectAny.to_string(), "INDIRECT(*)");
        assert!(DimPattern::IndirectMap(map.fingerprint())
            .to_string()
            .starts_with("INDIRECT(#"));
    }

    #[test]
    fn example4_query_lists() {
        // Paper Example 4, first query: matches if t3 = (CYCLIC(2), CYCLIC).
        let q3 = DistPattern::dims(vec![DimPattern::Cyclic(2), DimPattern::Cyclic(1)]);
        let t3 = DistType::new(vec![DimDist::Cyclic(2), DimDist::Cyclic(1)]);
        assert!(q3.matches(&t3));
        // Second clause: B3:(BLOCK, *) matches (BLOCK, anything).
        let q = DistPattern::dims(vec![DimPattern::Block, DimPattern::Star]);
        assert!(q.matches(&DistType::new(vec![DimDist::Block, DimDist::Cyclic(4)])));
        assert!(q.matches(&DistType::blocks2d()));
        assert!(!q.matches(&DistType::new(vec![DimDist::Cyclic(1), DimDist::Block])));
        // Rank must match for a dims pattern.
        assert!(!q.matches(&DistType::block1d()));
        // The bare * matches everything.
        assert!(DistPattern::Any.matches(&DistType::block1d()));
        assert!(DistPattern::Any.matches(&t3));
    }

    #[test]
    fn exact_patterns_round_trip() {
        let t = DistType::new(vec![
            DimDist::Block,
            DimDist::Cyclic(3),
            DimDist::GenBlock(vec![2, 8]),
            DimDist::NotDistributed,
        ]);
        let p = DistPattern::exact(&t);
        assert!(p.matches(&t));
        let other = DistType::new(vec![
            DimDist::Block,
            DimDist::Cyclic(4),
            DimDist::GenBlock(vec![2, 8]),
            DimDist::NotDistributed,
        ]);
        assert!(!p.matches(&other));
    }

    #[test]
    fn subsumption() {
        let any = DistPattern::Any;
        let block_star = DistPattern::dims(vec![DimPattern::Block, DimPattern::Star]);
        let block_cyclic = DistPattern::dims(vec![DimPattern::Block, DimPattern::Cyclic(2)]);
        let block_cyclic_any = DistPattern::dims(vec![DimPattern::Block, DimPattern::CyclicAny]);
        assert!(any.subsumes(&block_cyclic));
        assert!(block_star.subsumes(&block_cyclic));
        assert!(block_cyclic_any.subsumes(&block_cyclic));
        assert!(!block_cyclic.subsumes(&block_cyclic_any));
        assert!(!block_cyclic.subsumes(&any));
        assert!(!block_star.subsumes(&DistPattern::dims(vec![DimPattern::Block])));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DistPattern::Any.to_string(), "*");
        assert_eq!(
            DistPattern::dims(vec![DimPattern::Block, DimPattern::CyclicAny]).to_string(),
            "(BLOCK, CYCLIC(*))"
        );
        assert_eq!(DimPattern::GenBlockAny.to_string(), "B_BLOCK(*)");
        assert_eq!(DimPattern::GenBlock(vec![4, 6]).to_string(), "B_BLOCK(4,6)");
        assert_eq!(DimPattern::Cyclic(1).to_string(), "CYCLIC");
    }
}
