//! Distribution types: lists of per-dimension distribution functions.

use crate::{DimDist, DistError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A *distribution type* (paper §2.2): a class of distributions determined
/// by a distribution expression such as `(BLOCK, CYCLIC(K))` or
/// `( : , BLOCK)`, with one entry per array dimension.
///
/// Applying a distribution type to an array index domain and a processor
/// section yields a [`crate::Distribution`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DistType {
    dims: Vec<DimDist>,
}

impl DistType {
    /// Creates a distribution type from per-dimension entries.
    pub fn new(dims: Vec<DimDist>) -> Self {
        Self { dims }
    }

    /// `(BLOCK)` — 1-D block distribution.
    pub fn block1d() -> Self {
        Self::new(vec![DimDist::Block])
    }

    /// `(CYCLIC(k))` — 1-D cyclic distribution.
    pub fn cyclic1d(k: usize) -> Self {
        Self::new(vec![DimDist::Cyclic(k)])
    }

    /// `(B_BLOCK(sizes))` — 1-D general block distribution.
    pub fn gen_block1d(sizes: Vec<usize>) -> Self {
        Self::new(vec![DimDist::GenBlock(sizes)])
    }

    /// `(INDIRECT(map))` — 1-D indirect distribution through a shared
    /// mapping array.
    pub fn indirect1d(map: std::sync::Arc<crate::IndirectMap>) -> Self {
        Self::new(vec![DimDist::Indirect(map)])
    }

    /// `( : , BLOCK)` — distribute the second dimension by block
    /// ("column distribution" of a 2-D array; Figure 1's initial layout).
    pub fn columns() -> Self {
        Self::new(vec![DimDist::NotDistributed, DimDist::Block])
    }

    /// `(BLOCK, : )` — distribute the first dimension by block
    /// ("row distribution"; Figure 1's layout after `DISTRIBUTE`).
    pub fn rows() -> Self {
        Self::new(vec![DimDist::Block, DimDist::NotDistributed])
    }

    /// `(BLOCK, BLOCK)` — 2-D block distribution over a processor grid.
    pub fn blocks2d() -> Self {
        Self::new(vec![DimDist::Block, DimDist::Block])
    }

    /// Number of entries (must equal the rank of the array it is applied
    /// to).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension entries.
    pub fn dims(&self) -> &[DimDist] {
        &self.dims
    }

    /// The entry for dimension `dim`.
    pub fn dim(&self, dim: usize) -> &DimDist {
        &self.dims[dim]
    }

    /// Indices of the distributed (non-`:`) dimensions, in order; these are
    /// matched one-to-one with the dimensions of the target processor view.
    pub fn distributed_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_distributed())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether no dimension is distributed (the array is replicated on the
    /// target processors).
    pub fn is_replicated(&self) -> bool {
        self.distributed_dims().is_empty()
    }

    /// Whether any dimension is distributed through an `INDIRECT` mapping
    /// array — the irregular case the runtime resolves through its
    /// distributed translation table.
    pub fn has_indirect(&self) -> bool {
        self.dims.iter().any(|d| matches!(d, DimDist::Indirect(_)))
    }

    /// Heap bytes held by the per-dimension entries (see
    /// [`DimDist::payload_bytes`]).
    pub fn payload_bytes(&self) -> usize {
        self.dims.iter().map(|d| d.payload_bytes()).sum()
    }

    /// Checks that the type can apply to an array of rank `array_rank`.
    pub fn check_rank(&self, array_rank: usize) -> Result<()> {
        if self.rank() != array_rank {
            return Err(DistError::RankMismatch {
                array_rank,
                dist_rank: self.rank(),
            });
        }
        Ok(())
    }

    /// Returns a copy of this type with dimensions permuted: entry `d` of
    /// the result is entry `perm[d]` of `self`.  Used by `CONSTRUCT` when a
    /// secondary array is connected through a transposing alignment.
    pub fn permuted(&self, perm: &[usize]) -> Result<Self> {
        if perm.len() != self.rank() {
            return Err(DistError::RankMismatch {
                array_rank: perm.len(),
                dist_rank: self.rank(),
            });
        }
        let mut dims = Vec::with_capacity(perm.len());
        for &src in perm {
            let d = self.dims.get(src).ok_or(DistError::RankMismatch {
                array_rank: perm.len(),
                dist_rank: self.rank(),
            })?;
            dims.push(d.clone());
        }
        Ok(Self::new(dims))
    }
}

impl fmt::Display for DistType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<DimDist>> for DistType {
    fn from(dims: Vec<DimDist>) -> Self {
        Self::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(DistType::block1d().to_string(), "(BLOCK)");
        assert_eq!(DistType::cyclic1d(3).to_string(), "(CYCLIC(3))");
        assert_eq!(DistType::columns().to_string(), "(:, BLOCK)");
        assert_eq!(DistType::rows().to_string(), "(BLOCK, :)");
        assert_eq!(DistType::blocks2d().to_string(), "(BLOCK, BLOCK)");
        assert_eq!(
            DistType::gen_block1d(vec![3, 7]).to_string(),
            "(B_BLOCK(3,7))"
        );
    }

    #[test]
    fn distributed_dims() {
        assert_eq!(DistType::columns().distributed_dims(), vec![1]);
        assert_eq!(DistType::rows().distributed_dims(), vec![0]);
        assert_eq!(DistType::blocks2d().distributed_dims(), vec![0, 1]);
        let replicated = DistType::new(vec![DimDist::NotDistributed, DimDist::NotDistributed]);
        assert!(replicated.is_replicated());
    }

    #[test]
    fn rank_checks() {
        assert!(DistType::columns().check_rank(2).is_ok());
        assert!(matches!(
            DistType::columns().check_rank(3),
            Err(DistError::RankMismatch { .. })
        ));
    }

    #[test]
    fn permutation() {
        // (:, BLOCK) transposed becomes (BLOCK, :).
        let cols = DistType::columns();
        let rows = cols.permuted(&[1, 0]).unwrap();
        assert_eq!(rows, DistType::rows());
        assert!(cols.permuted(&[0]).is_err());
        assert!(cols.permuted(&[0, 5]).is_err());
    }

    #[test]
    fn example1_distribution_type() {
        // REAL C(10,10,10) DIST(BLOCK, BLOCK, :) from the paper's Example 1.
        let t = DistType::new(vec![
            DimDist::Block,
            DimDist::Block,
            DimDist::NotDistributed,
        ]);
        assert_eq!(t.rank(), 3);
        assert_eq!(t.distributed_dims(), vec![0, 1]);
        assert_eq!(t.to_string(), "(BLOCK, BLOCK, :)");
    }
}
