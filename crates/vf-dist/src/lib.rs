//! Processor arrays, distribution types, alignments and evaluated
//! distributions — the data-mapping layer of Vienna Fortran (paper §2).
//!
//! Vienna Fortran maps each array onto a *processor array* through a
//! *distribution*: an index mapping `δ_A : I^A → P(I^R) − {∅}` from the
//! array's index domain to (non-empty sets of) processor indices
//! (Definition 1).  An *alignment* `α_A : I^A → I^B` places the elements of
//! one array relative to another (Definition 2); the distribution of an
//! aligned array is obtained with the paper's `CONSTRUCT` operation:
//! `δ_A(i) = ⋃_{j ∈ α(i)} δ_B(j)`.
//!
//! This crate provides:
//!
//! * [`ProcessorArray`] / [`ProcessorView`] — the `PROCESSORS R(1:M,1:M)`
//!   declarations and sections thereof,
//! * [`DimDist`] — the intrinsic per-dimension distribution functions
//!   `BLOCK`, `CYCLIC(k)`, general block (`B_BLOCK`/`S_BLOCK`) and the `:`
//!   elision,
//! * [`DistType`] — a distribution *type* (a list of per-dimension
//!   distribution functions, e.g. `(BLOCK, CYCLIC(K))`),
//! * [`DistPattern`] / [`DimPattern`] — the wildcard patterns used in
//!   `RANGE` attributes and `DCASE`/`IDT` queries (`*`, `CYCLIC(*)`, …),
//! * [`Alignment`] — affine/permutation alignments such as
//!   `ALIGN D(I,J,K) WITH C(J,I,K)`,
//! * [`Distribution`] — a distribution type *applied* to an array index
//!   domain and a processor view: ownership lookup, local segments,
//!   `loc_map` local addressing, local↔global conversion, and the
//!   `CONSTRUCT` operation for connected (secondary) arrays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alignment;
mod connectivity;
mod dimdist;
mod dist_type;
mod distribution;
mod error;
mod indirect;
mod pattern;
mod processors;

pub use alignment::{AlignExpr, Alignment};
pub use connectivity::Connectivity;
pub use dimdist::{DimDist, DimSegment};
pub use dist_type::DistType;
pub use distribution::{construct, Distribution, LinearRun, LocalLayout, Locator};
pub use error::DistError;
pub use indirect::IndirectMap;
pub use pattern::{DimPattern, DistPattern};
pub use processors::{ProcId, ProcessorArray, ProcessorView};

/// Convenience result alias for fallible distribution operations.
pub type Result<T> = std::result::Result<T, DistError>;
